package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardCycler is a Cycler whose tick is split into two phases so many
// shards can tick concurrently inside one scheduler event:
//
//   - Tick (the compute phase) runs in parallel across shards and must be
//     side-effect-local: it may mutate only shard-private state and read
//     shared state, deferring every shared mutation into a shard-local
//     outbox.
//   - Commit (the serial phase) drains the outbox. Commits run on the
//     scheduler goroutine in shard order after every shard's Tick has
//     returned, so the interleaving of shared effects — scheduler sequence
//     numbers included — is identical to a fully serial simulation.
type ShardCycler interface {
	Cycler
	Commit(now Time)
}

// WindowShard extends ShardCycler with the bounded-lookahead window
// protocol: a shard can execute several consecutive cycles inside one
// scheduler event, buffering every shared effect with per-cycle marks, and
// replay them afterwards in (cycle, shard) order — the exact interleaving
// the single-cycle engine produces.
//
// Within a window the shard's inputs are frozen: the window driver
// guarantees no other scheduler event fires between the window's cycles
// (the span is bounded by Scheduler.NextTime), so a cycle's compute phase
// sees precisely the state it would have seen had each cycle been its own
// event. The one way freshness can still leak is through the shard's own
// deferred effects: a record that would schedule work or mutate shared
// machine state ("window-closing") truncates the window at the cycle that
// produced it.
type WindowShard interface {
	ShardCycler
	// BeginWindow starts a window; snapshot requests rollback capture
	// (optimistic mode).
	BeginWindow(snapshot bool)
	// WindowTick runs one cycle of the window and closes its effect
	// segment. closing reports that this cycle buffered a window-closing
	// effect (or that a buffer is near capacity), so no later cycle may
	// execute in this window.
	WindowTick(cycle int64, now Time) (busy, closing bool)
	// CommitCycle replays the buffered effects of window cycle k at that
	// cycle's edge time.
	CommitCycle(k int, now Time)
	// EndWindow releases window buffers after every cycle has committed.
	EndWindow()
	// Rollback discards all window cycles, restoring the BeginWindow
	// snapshot (optimistic mode only).
	Rollback()
}

// poolJob is one ForEach invocation, shared by every participating worker.
type poolJob struct {
	n    int32
	next *int32 // atomic work-stealing index
	fn   func(i int)
	wg   *sync.WaitGroup
	pan  *atomic.Value // first panic from a helper goroutine
}

func (j poolJob) work() {
	for {
		i := atomic.AddInt32(j.next, 1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
	}
}

// WorkerPool is a persistent pool of worker goroutines for data-parallel
// fan-out inside a single scheduler event. The goroutines block on a job
// channel between barriers, so the per-event cost is two channel hops per
// helper rather than goroutine creation.
type WorkerPool struct {
	n       int
	jobs    chan poolJob
	started bool
	// inline short-circuits ForEach on single-CPU hosts: with one
	// physical execution slot the helpers cannot overlap the caller, so
	// the channel round trips are pure dispatch overhead.
	inline bool
}

// NewWorkerPool returns a pool of n workers (n <= 0 means GOMAXPROCS).
// Goroutines start lazily on first use.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{n: n, inline: runtime.GOMAXPROCS(0) == 1}
}

// Size returns the worker count; a nil pool counts as one (serial).
func (p *WorkerPool) Size() int {
	if p == nil {
		return 1
	}
	return p.n
}

// ForEach runs fn(i) for every i in [0, n) spread across the pool and
// returns once all calls have completed. The calling goroutine participates
// as one of the workers. A nil or single-worker pool — or any pool on a
// single-CPU host — runs the calls inline, in index order.
func (p *WorkerPool) ForEach(n int, fn func(i int)) {
	if p == nil || p.n <= 1 || n <= 1 || p.inline {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if !p.started {
		p.start()
	}
	helpers := p.n - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var next int32
	var wg sync.WaitGroup
	var pan atomic.Value
	wg.Add(helpers)
	job := poolJob{n: int32(n), next: &next, fn: fn, wg: &wg, pan: &pan}
	for i := 0; i < helpers; i++ {
		p.jobs <- job
	}
	job.work()
	wg.Wait()
	if v := pan.Load(); v != nil {
		panic(v)
	}
}

// RunWorkers runs fn(w) for every w in [0, k) with each call on its own
// goroutine, the caller participating as worker 0. Unlike ForEach there is
// no work stealing: every worker is live concurrently, so fn bodies may
// synchronize with one another (the lockstep window barrier depends on
// this). k must not exceed Size(); it is clamped. k <= 1 runs inline.
func (p *WorkerPool) RunWorkers(k int, fn func(w int)) {
	if p != nil && k > p.n {
		k = p.n
	}
	if p == nil || k <= 1 {
		fn(0)
		return
	}
	if !p.started {
		p.start()
	}
	var wg sync.WaitGroup
	var pan atomic.Value
	wg.Add(k - 1)
	for w := 1; w < k; w++ {
		w := w
		next := int32(0)
		p.jobs <- poolJob{n: 1, next: &next, fn: func(int) { fn(w) }, wg: &wg, pan: &pan}
	}
	fn(0)
	wg.Wait()
	if v := pan.Load(); v != nil {
		panic(v)
	}
}

func (p *WorkerPool) start() {
	p.jobs = make(chan poolJob)
	for i := 0; i < p.n-1; i++ {
		go func() {
			for job := range p.jobs {
				func() {
					defer job.wg.Done()
					defer func() {
						if r := recover(); r != nil {
							job.pan.CompareAndSwap(nil, r)
						}
					}()
					job.work()
				}()
			}
		}()
	}
	p.started = true
}

// Close stops the worker goroutines. The pool restarts lazily on the next
// ForEach, so Close is safe to call between simulation runs. Nil-safe.
func (p *WorkerPool) Close() {
	if p == nil || !p.started {
		return
	}
	close(p.jobs)
	p.started = false
}

// spinBarrier synchronizes the lockstep window workers between cycles. It
// is generation-counted: the last arriver of each cycle becomes the
// coordinator, decides whether the window continues, and publishes the
// decision together with the next generation number. Workers spin with
// Gosched, so oversubscribed hosts (more workers than cores) stay live.
type spinBarrier struct {
	n       int32
	arrived atomic.Int32
	// state packs (generation << 1) | continueBit.
	state atomic.Uint64
}

func (b *spinBarrier) reset(n int32) {
	b.n = n
	b.arrived.Store(0)
	b.state.Store(0)
}

// arrive returns true on the coordinator (last arriver of this cycle).
func (b *spinBarrier) arrive() bool {
	return b.arrived.Add(1) == b.n
}

// publish releases the workers of generation gen with the continue bit.
// Coordinator only; it must reset arrived first.
func (b *spinBarrier) publish(gen int, cont bool) {
	b.arrived.Store(0)
	v := uint64(gen+1) << 1
	if cont {
		v |= 1
	}
	b.state.Store(v)
}

// await blocks until the coordinator publishes generation gen's decision
// and returns the continue bit.
func (b *spinBarrier) await(gen int) bool {
	for {
		v := b.state.Load()
		if int(v>>1) == gen+1 {
			return v&1 != 0
		}
		runtime.Gosched()
	}
}

// ParallelMacroActor is a MacroActor whose components tick concurrently on
// a WorkerPool and then commit serially in component order. Like
// MacroActor it consumes one event per cycle regardless of component
// count; unlike it, the compute phase of that event uses every host core.
// With a nil pool it degrades to the exact serial two-phase loop, which is
// why workers=1 and workers=N produce bit-identical results (the commit
// order, not the compute order, defines all shared-state interleavings).
//
// When its components implement WindowShard and a lookahead > 1 is set,
// one scheduler event covers up to `lookahead` consecutive cycles (a
// bounded-lookahead window): the span is capped by the next foreign
// scheduler event and truncated at the first cycle that buffers a
// window-closing effect, then every buffered effect replays in
// (cycle, shard) order — reproducing the single-cycle engine bit for bit
// while paying scheduler and commit overhead once per window.
type ParallelMacroActor struct {
	Name  string
	sched *Scheduler
	clock *Clock
	pool  *WorkerPool
	comps []ShardCycler
	busy  []bool

	// Window mode (SetLookahead). wcomps mirrors comps and is non-nil in
	// every slot only when every component supports windows.
	lookahead  int
	optimistic bool
	allWindows bool
	wcomps     []WindowShard
	rollbacks  atomic.Uint64

	// Hoisted single-cycle tick closure (avoids one allocation per event).
	tickFn    func(i int)
	tickCycle int64
	tickNow   Time

	// Optimistic free-run state, reused across windows.
	frFn             func(i int)
	rbFn             func(i int)
	frCycle          int64
	frNow, frPeriod  Time
	frSpan, frReplay int
	ends, closeAt    []int
	busyHist         []bool // [comp*lookahead + k]

	bar spinBarrier

	scheduled bool
	pending   *Event
}

// NewParallelMacroActor creates a parallel macro-actor on the given clock
// domain. A nil pool means serial execution.
func NewParallelMacroActor(name string, sched *Scheduler, clock *Clock, pool *WorkerPool) *ParallelMacroActor {
	m := &ParallelMacroActor{Name: name, sched: sched, clock: clock, pool: pool,
		lookahead: 1, allWindows: true}
	m.tickFn = func(i int) { m.busy[i] = m.comps[i].Tick(m.tickCycle, m.tickNow) }
	m.frFn = func(i int) { m.freeRun(i) }
	m.rbFn = func(i int) { m.rollbackReplay(i) }
	return m
}

// Add registers a component shard.
func (m *ParallelMacroActor) Add(c ShardCycler) {
	m.comps = append(m.comps, c)
	m.busy = append(m.busy, false)
	w, ok := c.(WindowShard)
	if !ok {
		m.allWindows = false
	}
	m.wcomps = append(m.wcomps, w)
}

// Len returns the number of component shards.
func (m *ParallelMacroActor) Len() int { return len(m.comps) }

// Workers returns the number of host workers ticking the shards.
func (m *ParallelMacroActor) Workers() int { return m.pool.Size() }

// SetLookahead configures the bounded-lookahead window: w is the maximum
// cycles one scheduler event may cover (w <= 1 restores the single-cycle
// engine). optimistic selects the speculative mode: shards free-run the
// whole window independently — one barrier per window instead of one per
// cycle — and shards that overran the consensus window boundary roll back
// to their window-entry snapshot and replay. Results are bit-identical in
// every mode; see docs/PERF.md.
func (m *ParallelMacroActor) SetLookahead(w int, optimistic bool) {
	if w < 1 {
		w = 1
	}
	m.lookahead = w
	m.optimistic = optimistic
}

// Lookahead returns the configured window bound (1 = single-cycle engine).
func (m *ParallelMacroActor) Lookahead() int { return m.lookahead }

// Rollbacks returns the number of shard-window rollbacks the optimistic
// mode performed (0 in the conservative modes).
func (m *ParallelMacroActor) Rollbacks() uint64 { return m.rollbacks.Load() }

// Wake ensures a notification is scheduled for the next clock edge.
// Idempotent within a cycle, like MacroActor.Wake.
func (m *ParallelMacroActor) Wake(now Time) {
	if m.scheduled {
		return
	}
	at := m.clock.NextEdge(now)
	if at == MaxTime {
		return // clock gated off; re-woken on Enable
	}
	m.scheduled = true
	m.pending = m.sched.Schedule(at, PrioClock, m)
}

// Notify runs one lookahead window (possibly a single cycle): the parallel
// compute phase(s), then the serial commit replay in (cycle, shard) order,
// and re-arms the clock edge if any shard still has work.
func (m *ParallelMacroActor) Notify(now Time) {
	m.scheduled = false
	m.pending = nil
	span := 1
	if m.lookahead > 1 && m.allWindows && len(m.comps) > 0 {
		span = m.windowSpan(now)
	}
	if span <= 1 {
		m.notifyOne(now)
		return
	}
	if m.optimistic {
		m.notifyOptimistic(now, span)
	} else {
		m.notifyWindow(now, span)
	}
}

// windowSpan bounds the next window: no more than lookahead cycles, and
// only cycles whose edges fall strictly before the next foreign scheduler
// event (whose effects the window's frozen-input contract must not miss).
func (m *ParallelMacroActor) windowSpan(now Time) int {
	period := m.clock.Period()
	if period <= 0 {
		return 1
	}
	span := m.lookahead
	if nt := m.sched.NextTime(); nt != MaxTime {
		avail := (nt - now + period - 1) / period
		if avail < Time(span) {
			span = int(avail)
		}
	}
	if span < 1 {
		span = 1
	}
	return span
}

// notifyOne is the exact single-cycle two-phase engine (lookahead=1 and
// windows that collapse to one cycle).
func (m *ParallelMacroActor) notifyOne(now Time) {
	m.tickCycle, m.tickNow = m.clock.Cycle(now), now
	m.pool.ForEach(len(m.comps), m.tickFn)
	any := false
	for i, c := range m.comps {
		c.Commit(now)
		if m.busy[i] {
			any = true
		}
	}
	if any {
		m.Wake(now)
	}
}

// notifyWindow runs a conservative lockstep window: every shard ticks
// cycle k before any shard ticks cycle k+1, so a window-closing effect in
// any shard truncates the window for all of them without speculation. The
// commit replay then runs once for the whole window.
func (m *ParallelMacroActor) notifyWindow(now Time, span int) {
	comps := m.wcomps
	period := m.clock.Period()
	cycle := m.clock.Cycle(now)
	for _, c := range comps {
		c.BeginWindow(false)
	}
	var last int
	var anyBusy bool
	nw := m.pool.Size()
	if nw > len(comps) {
		nw = len(comps)
	}
	if nw <= 1 {
		last, anyBusy = m.lockstepSerial(cycle, now, period, span)
	} else {
		last, anyBusy = m.lockstepParallel(nw, cycle, now, period, span)
	}
	m.commitWindow(now, period, last)
	if anyBusy {
		m.Wake(now + Time(last)*period)
	}
}

func (m *ParallelMacroActor) lockstepSerial(cycle int64, now, period Time, span int) (last int, anyBusy bool) {
	comps := m.wcomps
	for k := 0; k < span; k++ {
		nowK := now + Time(k)*period
		busy, closing := false, false
		for _, c := range comps {
			b, cl := c.WindowTick(cycle+int64(k), nowK)
			busy = busy || b
			closing = closing || cl
		}
		last, anyBusy = k, busy
		if closing || !busy {
			break
		}
	}
	return last, anyBusy
}

// lockstepParallel is the barrier-elided parallel window: one job dispatch
// per window with an atomic spin barrier per cycle, instead of two channel
// hops per helper per cycle.
func (m *ParallelMacroActor) lockstepParallel(nw int, cycle int64, now, period Time, span int) (last int, anyBusy bool) {
	comps := m.wcomps
	n := len(comps)
	m.bar.reset(int32(nw))
	var busyF, closeF atomic.Int32
	var lastK atomic.Int32
	var lastBusy atomic.Int32
	m.pool.RunWorkers(nw, func(w int) {
		lo, hi := n*w/nw, n*(w+1)/nw
		for k := 0; ; k++ {
			nowK := now + Time(k)*period
			busy, closing := false, false
			for _, c := range comps[lo:hi] {
				b, cl := c.WindowTick(cycle+int64(k), nowK)
				busy = busy || b
				closing = closing || cl
			}
			if busy {
				busyF.Store(1)
			}
			if closing {
				closeF.Store(1)
			}
			if m.bar.arrive() {
				wasBusy := busyF.Load() == 1
				cont := k+1 < span && wasBusy && closeF.Load() == 0
				lastK.Store(int32(k))
				if wasBusy {
					lastBusy.Store(1)
				} else {
					lastBusy.Store(0)
				}
				if cont {
					busyF.Store(0)
					closeF.Store(0)
				}
				m.bar.publish(k, cont)
			}
			if !m.bar.await(k) {
				return
			}
		}
	})
	return int(lastK.Load()), lastBusy.Load() == 1
}

// notifyOptimistic runs a speculative window: every shard free-runs the
// full span independently (no per-cycle barrier at all), stopping only at
// its own first window-closing cycle. The consensus window end E is the
// earliest closing cycle across shards (or the first all-quiet cycle);
// shards that ran past E roll back to their window-entry snapshot and
// deterministically replay cycles up to E before the common commit.
func (m *ParallelMacroActor) notifyOptimistic(now Time, span int) {
	comps := m.wcomps
	n := len(comps)
	period := m.clock.Period()
	if len(m.ends) < n {
		m.ends = make([]int, n)
		m.closeAt = make([]int, n)
	}
	if len(m.busyHist) < n*m.lookahead {
		m.busyHist = make([]bool, n*m.lookahead)
	}
	m.frCycle, m.frNow, m.frPeriod, m.frSpan = m.clock.Cycle(now), now, period, span
	m.pool.ForEach(n, m.frFn)

	e := span - 1
	for i := 0; i < n; i++ {
		if c := m.closeAt[i]; c >= 0 && c < e {
			e = c
		}
	}
	for k := 0; k <= e; k++ {
		quiet := true
		for i := 0; i < n; i++ {
			if m.busyHist[i*m.lookahead+k] {
				quiet = false
				break
			}
		}
		if quiet {
			e = k
			break
		}
	}

	m.frReplay = e
	m.pool.ForEach(n, m.rbFn)

	m.commitWindow(now, period, e)
	anyBusy := false
	for i := 0; i < n; i++ {
		if m.busyHist[i*m.lookahead+e] {
			anyBusy = true
			break
		}
	}
	if anyBusy {
		m.Wake(now + Time(e)*period)
	}
}

// freeRun speculatively executes shard i through the window.
func (m *ParallelMacroActor) freeRun(i int) {
	c := m.wcomps[i]
	c.BeginWindow(true)
	base := i * m.lookahead
	end, closed := -1, -1
	for k := 0; k < m.frSpan; k++ {
		busy, closing := c.WindowTick(m.frCycle+int64(k), m.frNow+Time(k)*m.frPeriod)
		m.busyHist[base+k] = busy
		end = k
		if closing {
			closed = k
			break
		}
	}
	m.ends[i], m.closeAt[i] = end, closed
}

// rollbackReplay discards shard i's overrun past the consensus boundary
// and replays the agreed cycles from the window-entry snapshot. The replay
// is deterministic: within the window the shard's inputs are frozen, so
// re-ticking the same cycles reproduces the same buffered effects.
func (m *ParallelMacroActor) rollbackReplay(i int) {
	e := m.frReplay
	if m.ends[i] <= e {
		return
	}
	m.rollbacks.Add(1)
	c := m.wcomps[i]
	c.Rollback()
	base := i * m.lookahead
	for k := 0; k <= e; k++ {
		busy, _ := c.WindowTick(m.frCycle+int64(k), m.frNow+Time(k)*m.frPeriod)
		m.busyHist[base+k] = busy
	}
}

// commitWindow replays every shard's buffered effects for cycles [0,last]
// in (cycle, shard) order — the serial interleaving the single-cycle
// engine produces — then releases the window buffers.
func (m *ParallelMacroActor) commitWindow(now, period Time, last int) {
	comps := m.wcomps
	for k := 0; k <= last; k++ {
		nowK := now + Time(k)*period
		for _, c := range comps {
			c.CommitCycle(k, nowK)
		}
	}
	for _, c := range comps {
		c.EndWindow()
	}
}
