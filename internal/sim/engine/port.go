package engine

// Inputable is implemented by cycle-accurate components that accept
// instruction or data packages from other components (paper §III-C: "any
// activity during simulation takes place because … an instruction or data
// package is passed from one cycle-accurate component to another, which
// implements the Inputable interface").
type Inputable interface {
	// Input delivers a package. The receiver must not retain pkg past the
	// call unless it owns it by protocol.
	Input(pkg any, now Time)
}

// InputFunc adapts a function to the Inputable interface.
type InputFunc func(pkg any, now Time)

// Input calls f.
func (f InputFunc) Input(pkg any, now Time) { f(pkg, now) }

// Port is a point of transfer for packages between two cycle-accurate
// components. Transfers happen in the second phase of a clock cycle
// (PrioTransfer), so all phase-1 negotiation at the same timestamp settles
// first — this implements the two-phase cycle-splitting the paper
// describes, keeping the order of phases consistent across clock cycles.
type Port struct {
	Name    string
	sched   *Scheduler
	dst     Inputable
	latency Time // transfer latency in ticks
}

// NewPort creates a port on sched delivering to dst after latency ticks.
func NewPort(name string, sched *Scheduler, dst Inputable, latency Time) *Port {
	return &Port{Name: name, sched: sched, dst: dst, latency: latency}
}

// Dst returns the destination component.
func (p *Port) Dst() Inputable { return p.dst }

// Send schedules delivery of pkg at now+latency in the transfer phase.
func (p *Port) Send(pkg any, now Time) {
	at := now + p.latency
	p.sched.ScheduleFunc(at, PrioTransfer, func(t Time) {
		p.dst.Input(pkg, t)
	})
}

// SendAt schedules delivery at an explicit time (still in the transfer
// phase); used by components that compute service completion times.
func (p *Port) SendAt(pkg any, at Time) {
	p.sched.ScheduleFunc(at, PrioTransfer, func(t Time) {
		p.dst.Input(pkg, t)
	})
}
