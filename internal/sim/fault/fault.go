// Package fault implements the deterministic fault-injection plan for the
// cycle-accurate simulator (docs/ROBUSTNESS.md). A plan is described by a
// compact textual spec ("kind:count[xMag][@lo-hi];..."), parsed into a
// Spec, and then materialized against a machine shape with a seed: every
// random draw — injection cycle, target component, bit position, magnitude
// — comes from an independent internal/prng stream per fault kind, so the
// same (seed, spec, shape) triple always yields the same fault schedule,
// and two plans that share a seed but differ in one kind's count do not
// perturb the other kinds' draws.
//
// The package is deliberately free of simulator dependencies: it produces
// a sorted list of (cycle, target) fault records; internal/sim/cycle owns
// the architectural interpretation of each kind.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmtgo/internal/prng"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// MemFlip flips one bit of one shared-memory byte (transient).
	MemFlip Kind = iota
	// RegFlip flips one bit of one TCU register (transient).
	RegFlip
	// ICNDelay delays the next injected ICN package by Mag ICN cycles.
	ICNDelay
	// ICNDup duplicates the next injected ICN package; the ghost copy
	// consumes network/accept bandwidth and is discarded at the module.
	ICNDup
	// ICNDrop drops the next injected ICN package; it is retransmitted
	// after Mag× the base traversal latency (the simulator never loses a
	// request outright — XMT's network is lossless end to end).
	ICNDrop
	// CacheStall freezes one shared cache module for Mag cache cycles.
	CacheStall
	// TCUFail permanently fails one TCU; it is decommissioned and its
	// in-flight virtual thread re-dispatched to a surviving TCU.
	TCUFail
	// ClusterFail permanently fails every TCU of one cluster.
	ClusterFail

	numKinds
)

// String returns the spec keyword of the kind.
func (k Kind) String() string {
	switch k {
	case MemFlip:
		return "memflip"
	case RegFlip:
		return "regflip"
	case ICNDelay:
		return "icndelay"
	case ICNDup:
		return "icndup"
	case ICNDrop:
		return "icndrop"
	case CacheStall:
		return "cachestall"
	case TCUFail:
		return "tcufail"
	case ClusterFail:
		return "clusterfail"
	}
	return "?"
}

var kindNames = map[string]Kind{
	"memflip":     MemFlip,
	"regflip":     RegFlip,
	"icndelay":    ICNDelay,
	"icndup":      ICNDup,
	"icndrop":     ICNDrop,
	"cachestall":  CacheStall,
	"tcufail":     TCUFail,
	"clusterfail": ClusterFail,
}

// Default injection-cycle window when an entry has no @lo-hi range.
const (
	DefaultLo = 1_000
	DefaultHi = 100_000
)

// Entry is one parsed plan entry: inject Count faults of one Kind,
// uniformly over cluster cycles [Lo, Hi].
type Entry struct {
	Kind  Kind
	Count int
	// Mag overrides the kind's drawn magnitude when > 0 (stall length in
	// cache cycles, delay in ICN cycles, retransmit multiplier).
	Mag int64
	Lo  int64
	Hi  int64
}

// Spec is a parsed fault plan.
type Spec struct {
	Entries []Entry
}

// ParseSpec parses the plan grammar:
//
//	spec  := entry (';' entry)*
//	entry := kind ':' count ['x' magnitude] ['@' lo ['-' hi]]
//
// e.g. "tcufail:2@1000-20000;memflip:5;cachestall:1x500000@100-100".
// Whitespace around tokens is ignored; an empty spec is valid and empty.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q: want kind:count", part)
		}
		kind, ok := kindNames[strings.ToLower(strings.TrimSpace(kindStr))]
		if !ok {
			return nil, fmt.Errorf("fault: unknown kind %q (have %s)", strings.TrimSpace(kindStr), kindList())
		}
		e := Entry{Kind: kind, Lo: DefaultLo, Hi: DefaultHi}

		rest = strings.TrimSpace(rest)
		var window string
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			window = strings.TrimSpace(rest[at+1:])
			rest = strings.TrimSpace(rest[:at])
		}
		countStr := rest
		if x := strings.IndexByte(rest, 'x'); x >= 0 {
			countStr = strings.TrimSpace(rest[:x])
			mag, err := strconv.ParseInt(strings.TrimSpace(rest[x+1:]), 10, 64)
			if err != nil || mag <= 0 {
				return nil, fmt.Errorf("fault: entry %q: bad magnitude", part)
			}
			e.Mag = mag
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fault: entry %q: bad count", part)
		}
		e.Count = n

		if window != "" {
			loStr, hiStr, ranged := strings.Cut(window, "-")
			lo, err := strconv.ParseInt(strings.TrimSpace(loStr), 10, 64)
			if err != nil || lo < 0 {
				return nil, fmt.Errorf("fault: entry %q: bad window", part)
			}
			hi := lo
			if ranged {
				hi, err = strconv.ParseInt(strings.TrimSpace(hiStr), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: entry %q: bad window", part)
				}
			}
			if hi < lo {
				return nil, fmt.Errorf("fault: entry %q: window end %d before start %d", part, hi, lo)
			}
			e.Lo, e.Hi = lo, hi
		}
		spec.Entries = append(spec.Entries, e)
	}
	return spec, nil
}

func kindList() string {
	names := make([]string, 0, len(kindNames))
	for n := range kindNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// String renders the spec back in plan grammar (normalized).
func (s *Spec) String() string {
	var parts []string
	for _, e := range s.Entries {
		p := fmt.Sprintf("%s:%d", e.Kind, e.Count)
		if e.Mag > 0 {
			p += fmt.Sprintf("x%d", e.Mag)
		}
		p += fmt.Sprintf("@%d-%d", e.Lo, e.Hi)
		parts = append(parts, p)
	}
	return strings.Join(parts, ";")
}

// Shape is the machine geometry a plan is materialized against.
type Shape struct {
	Clusters       int
	TCUsPerCluster int
	CacheModules   int
	MemBytes       uint32
}

// Fault is one scheduled fault instance. Which fields are meaningful
// depends on Kind (see the Kind docs); Cycle is an absolute cluster-domain
// cycle, so a plan survives checkpoint/resume unchanged.
type Fault struct {
	Kind  Kind
	Cycle int64

	TCU     int    // RegFlip, TCUFail: global TCU index
	Cluster int    // ClusterFail: cluster index
	Module  int    // CacheStall: cache-module index
	Addr    uint32 // MemFlip: byte address
	Reg     uint8  // RegFlip: register number (1..31)
	Bit     uint8  // MemFlip: bit 0..7; RegFlip: bit 0..31
	Mag     int64  // ICNDelay/ICNDrop/CacheStall magnitude
}

// Materialize draws the concrete fault schedule for spec under shape.
// Draws come from one prng stream per fault kind (stream id = kind), so
// kinds do not perturb each other; the result is sorted by cycle (ties by
// draw order), which is the order the simulator schedules them in.
//
// Permanent failures (tcufail, clusterfail) draw distinct targets; a plan
// that would decommission every TCU is rejected here rather than letting
// the run die mid-way.
func Materialize(seed uint64, spec *Spec, shape Shape) ([]Fault, error) {
	if shape.Clusters <= 0 || shape.TCUsPerCluster <= 0 || shape.CacheModules <= 0 || shape.MemBytes == 0 {
		return nil, fmt.Errorf("fault: invalid shape %+v", shape)
	}
	tcus := shape.Clusters * shape.TCUsPerCluster
	streams := make([]*prng.PCG, numKinds)
	stream := func(k Kind) *prng.PCG {
		if streams[k] == nil {
			streams[k] = prng.NewStream(seed, uint64(k)+1)
		}
		return streams[k]
	}

	usedTCU := map[int]bool{}     // distinct permanent TCU targets
	usedCluster := map[int]bool{} // distinct permanent cluster targets
	deadTCUs := 0

	var out []Fault
	for _, e := range spec.Entries {
		r := stream(e.Kind)
		for i := 0; i < e.Count; i++ {
			f := Fault{Kind: e.Kind, Mag: e.Mag}
			f.Cycle = e.Lo
			if e.Hi > e.Lo {
				f.Cycle = e.Lo + int64(r.Intn(int(e.Hi-e.Lo+1)))
			}
			switch e.Kind {
			case MemFlip:
				f.Addr = uint32(r.Intn(int(shape.MemBytes)))
				f.Bit = uint8(r.Intn(8))
			case RegFlip:
				f.TCU = r.Intn(tcus)
				f.Reg = uint8(1 + r.Intn(31)) // never $zero
				f.Bit = uint8(r.Intn(32))
			case ICNDelay:
				if f.Mag == 0 {
					f.Mag = int64(1 + r.Intn(64))
				}
			case ICNDup:
				// no parameters beyond the cycle
			case ICNDrop:
				if f.Mag == 0 {
					f.Mag = int64(2 + r.Intn(6)) // retransmit multiplier
				}
			case CacheStall:
				f.Module = r.Intn(shape.CacheModules)
				if f.Mag == 0 {
					f.Mag = int64(16 + r.Intn(240))
				}
			case TCUFail:
				t, ok := drawDistinct(r, tcus, usedTCU)
				if !ok {
					return nil, fmt.Errorf("fault: plan fails more TCUs than exist (%d)", tcus)
				}
				deadTCUs++
				f.TCU = t
			case ClusterFail:
				cl, ok := drawDistinct(r, shape.Clusters, usedCluster)
				if !ok {
					return nil, fmt.Errorf("fault: plan fails more clusters than exist (%d)", shape.Clusters)
				}
				// Count only TCUs not already individually failed.
				for t := cl * shape.TCUsPerCluster; t < (cl+1)*shape.TCUsPerCluster; t++ {
					if !usedTCU[t] {
						deadTCUs++
					}
					usedTCU[t] = true
				}
				f.Cluster = cl
			}
			out = append(out, f)
		}
	}
	if deadTCUs >= tcus {
		return nil, fmt.Errorf("fault: plan decommissions all %d TCUs; at least one must survive", tcus)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out, nil
}

func drawDistinct(r *prng.PCG, n int, used map[int]bool) (int, bool) {
	if len(used) >= n {
		return 0, false
	}
	for {
		v := r.Intn(n)
		if !used[v] {
			used[v] = true
			return v, true
		}
	}
}

// Plan parses and materializes in one step (the common caller path).
func Plan(seed uint64, spec string, shape Shape) ([]Fault, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return Materialize(seed, sp, shape)
}
