package fault

import (
	"reflect"
	"strings"
	"testing"
)

var testShape = Shape{Clusters: 8, TCUsPerCluster: 8, CacheModules: 8, MemBytes: 1 << 20}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec(" tcufail:2@1000-20000; memflip:5 ; cachestall:1x500000@100-100 ;;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Kind: TCUFail, Count: 2, Lo: 1000, Hi: 20000},
		{Kind: MemFlip, Count: 5, Lo: DefaultLo, Hi: DefaultHi},
		{Kind: CacheStall, Count: 1, Mag: 500000, Lo: 100, Hi: 100},
	}
	if !reflect.DeepEqual(sp.Entries, want) {
		t.Fatalf("entries = %+v, want %+v", sp.Entries, want)
	}
	// A single-value window means lo == hi.
	sp2, err := ParseSpec("icndelay:3@500")
	if err != nil {
		t.Fatal(err)
	}
	if e := sp2.Entries[0]; e.Lo != 500 || e.Hi != 500 {
		t.Fatalf("window = [%d,%d], want [500,500]", e.Lo, e.Hi)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"frob:1",        // unknown kind
		"memflip",       // no count
		"memflip:-1",    // negative count
		"memflip:x",     // non-numeric count
		"memflip:1x0",   // zero magnitude
		"memflip:1xzz",  // bad magnitude
		"memflip:1@9-2", // inverted window
		"memflip:1@-5",  // negative window
		"memflip:1@a-b", // non-numeric window
		"tcufail:1:2",   // stray colon
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	sp, err := ParseSpec("tcufail:2@10-20;icndrop:3x4@5-9")
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", sp.String(), err)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", sp, sp2)
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	spec := "memflip:4;regflip:4;icndelay:2;icndup:2;icndrop:2;cachestall:2;tcufail:3;clusterfail:1"
	a, err := Plan(42, spec, testShape)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(42, spec, testShape)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, spec, shape) produced different schedules")
	}
	c, _ := Plan(43, spec, testShape)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Cycle < a[i-1].Cycle {
			t.Fatalf("schedule not sorted by cycle at %d: %+v", i, a)
		}
	}
}

func TestMaterializeStreamsIndependent(t *testing.T) {
	// Adding a second kind must not change the first kind's draws.
	only, err := Plan(7, "memflip:5", testShape)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Plan(7, "memflip:5;tcufail:2", testShape)
	if err != nil {
		t.Fatal(err)
	}
	var mems []Fault
	for _, f := range both {
		if f.Kind == MemFlip {
			mems = append(mems, f)
		}
	}
	sortByCycleStable := func(fs []Fault) []Fault { return fs } // already sorted
	if !reflect.DeepEqual(sortByCycleStable(only), mems) {
		t.Fatalf("memflip draws perturbed by tcufail entry:\nonly: %+v\nboth: %+v", only, mems)
	}
}

func TestMaterializeTargetsInRange(t *testing.T) {
	fs, err := Plan(9, "memflip:50;regflip:50;cachestall:20;tcufail:10;clusterfail:2", testShape)
	if err != nil {
		t.Fatal(err)
	}
	tcus := testShape.Clusters * testShape.TCUsPerCluster
	seenTCU := map[int]bool{}
	for _, f := range fs {
		switch f.Kind {
		case MemFlip:
			if f.Addr >= testShape.MemBytes || f.Bit > 7 {
				t.Fatalf("memflip out of range: %+v", f)
			}
		case RegFlip:
			if f.TCU < 0 || f.TCU >= tcus || f.Reg == 0 || f.Reg > 31 || f.Bit > 31 {
				t.Fatalf("regflip out of range: %+v", f)
			}
		case CacheStall:
			if f.Module < 0 || f.Module >= testShape.CacheModules || f.Mag <= 0 {
				t.Fatalf("cachestall out of range: %+v", f)
			}
		case TCUFail:
			if seenTCU[f.TCU] {
				t.Fatalf("tcufail repeated TCU %d", f.TCU)
			}
			seenTCU[f.TCU] = true
		}
	}
}

func TestMaterializeRejectsTotalWipeout(t *testing.T) {
	small := Shape{Clusters: 2, TCUsPerCluster: 2, CacheModules: 2, MemBytes: 1 << 16}
	if _, err := Plan(1, "tcufail:4", small); err == nil {
		t.Fatal("plan killing every TCU accepted")
	}
	if _, err := Plan(1, "clusterfail:2", small); err == nil {
		t.Fatal("plan killing every cluster accepted")
	}
	if _, err := Plan(1, "clusterfail:1;tcufail:2", small); err == nil {
		t.Fatal("combined wipeout accepted")
	}
	if _, err := Plan(1, "tcufail:3", small); err != nil {
		t.Fatalf("recoverable plan rejected: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for name, k := range kindNames {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if !strings.Contains(Kind(200).String(), "?") {
		t.Error("unknown kind should stringify as ?")
	}
}
