package funcmodel

import (
	"fmt"
	"math"

	"xmtgo/internal/isa"
)

// The functional semantics are split into the pieces the cycle-accurate
// model needs individually: pure compute (ExecCompute), branch evaluation
// (EvalBranch), effective-address computation (EffAddr) and the
// memory-side operations (LoadValue / StoreValue / Psm, performed at the
// owning cache module in cycle-accurate mode), plus the sys traps.

func f32(v int32) float32   { return math.Float32frombits(uint32(v)) }
func fbits(f float32) int32 { return int32(math.Float32bits(f)) }

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// ExecCompute executes a register-only instruction (ALU, shift, MDU, FPU),
// writing the destination register. It must not be called for memory,
// branch, or control instructions.
func (m *Machine) ExecCompute(ctx *Context, in isa.Instr) error {
	rs, rt := ctx.Reg[in.Rs], ctx.Reg[in.Rt]
	var v int32
	switch in.Op {
	case isa.OpNop:
		return nil
	case isa.OpAdd, isa.OpAddu:
		v = rs + rt
	case isa.OpSub, isa.OpSubu:
		v = rs - rt
	case isa.OpAnd:
		v = rs & rt
	case isa.OpOr:
		v = rs | rt
	case isa.OpXor:
		v = rs ^ rt
	case isa.OpNor:
		v = ^(rs | rt)
	case isa.OpSlt:
		v = b2i(rs < rt)
	case isa.OpSltu:
		v = b2i(uint32(rs) < uint32(rt))
	case isa.OpAddi, isa.OpAddiu:
		v = rs + in.Imm
	case isa.OpAndi:
		v = rs & (in.Imm & 0xffff)
	case isa.OpOri:
		v = rs | (in.Imm & 0xffff)
	case isa.OpXori:
		v = rs ^ (in.Imm & 0xffff)
	case isa.OpSlti:
		v = b2i(rs < in.Imm)
	case isa.OpSltiu:
		v = b2i(uint32(rs) < uint32(in.Imm))
	case isa.OpLui:
		v = in.Imm << 16
	case isa.OpSll:
		v = rs << uint(in.Imm&31)
	case isa.OpSrl:
		v = int32(uint32(rs) >> uint(in.Imm&31))
	case isa.OpSra:
		v = rs >> uint(in.Imm&31)
	case isa.OpSllv:
		v = rs << uint(rt&31)
	case isa.OpSrlv:
		v = int32(uint32(rs) >> uint(rt&31))
	case isa.OpSrav:
		v = rs >> uint(rt&31)
	case isa.OpMul:
		v = rs * rt
	case isa.OpMulu:
		v = int32(uint32(rs) * uint32(rt))
	case isa.OpDiv:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = rs / rt
	case isa.OpDivu:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = int32(uint32(rs) / uint32(rt))
	case isa.OpRem:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = rs % rt
	case isa.OpRemu:
		if rt == 0 {
			return fmt.Errorf("integer division by zero")
		}
		v = int32(uint32(rs) % uint32(rt))
	case isa.OpAddS:
		v = fbits(f32(rs) + f32(rt))
	case isa.OpSubS:
		v = fbits(f32(rs) - f32(rt))
	case isa.OpMulS:
		v = fbits(f32(rs) * f32(rt))
	case isa.OpDivS:
		v = fbits(f32(rs) / f32(rt))
	case isa.OpAbsS:
		v = fbits(float32(math.Abs(float64(f32(rs)))))
	case isa.OpNegS:
		v = fbits(-f32(rs))
	case isa.OpSqrtS:
		v = fbits(float32(math.Sqrt(float64(f32(rs)))))
	case isa.OpCvtSW:
		v = fbits(float32(rs))
	case isa.OpCvtWS:
		v = int32(f32(rs))
	case isa.OpCeqS:
		v = b2i(f32(rs) == f32(rt))
	case isa.OpCltS:
		v = b2i(f32(rs) < f32(rt))
	case isa.OpCleS:
		v = b2i(f32(rs) <= f32(rt))
	default:
		return fmt.Errorf("ExecCompute: %s is not a compute instruction", in.Op)
	}
	ctx.SetReg(in.Rd, v)
	return nil
}

// EvalBranch evaluates a branch/jump at ctx (whose PC is already advanced
// past the instruction) and returns whether it is taken and the target
// instruction index. Link registers are written here.
func (m *Machine) EvalBranch(ctx *Context, in isa.Instr) (taken bool, target int, err error) {
	rs, rt := ctx.Reg[in.Rs], ctx.Reg[in.Rt]
	switch in.Op {
	case isa.OpBeq:
		return rs == rt, in.Target, nil
	case isa.OpBne:
		return rs != rt, in.Target, nil
	case isa.OpBlez:
		return rs <= 0, in.Target, nil
	case isa.OpBgtz:
		return rs > 0, in.Target, nil
	case isa.OpBltz:
		return rs < 0, in.Target, nil
	case isa.OpBgez:
		return rs >= 0, in.Target, nil
	case isa.OpJ:
		return true, in.Target, nil
	case isa.OpJal:
		ctx.SetReg(isa.RegRA, int32(ctx.PC))
		return true, in.Target, nil
	case isa.OpJr:
		return true, int(ctx.Reg[in.Rs]), nil
	case isa.OpJalr:
		t := int(ctx.Reg[in.Rs])
		ctx.SetReg(isa.RegRA, int32(ctx.PC))
		return true, t, nil
	}
	return false, 0, fmt.Errorf("EvalBranch: %s is not a branch", in.Op)
}

// EffAddr computes the effective byte address of a memory instruction.
func (m *Machine) EffAddr(ctx *Context, in isa.Instr) uint32 {
	return uint32(ctx.Reg[in.Rs] + in.Imm)
}

// LoadValue performs the memory-side read of a load instruction and
// returns the register value to commit.
func (m *Machine) LoadValue(in isa.Instr, addr uint32) (int32, error) {
	switch in.Op {
	case isa.OpLw, isa.OpLwRO, isa.OpPref:
		return m.ReadWord(addr)
	case isa.OpLb:
		b, err := m.LoadByte(addr)
		return int32(int8(b)), err
	case isa.OpLbu:
		b, err := m.LoadByte(addr)
		return int32(b), err
	}
	return 0, fmt.Errorf("LoadValue: %s is not a load", in.Op)
}

// StoreValue performs the memory-side write of a store instruction; data
// is the value of the instruction's data register captured at issue.
func (m *Machine) StoreValue(in isa.Instr, addr uint32, data int32) error {
	switch in.Op {
	case isa.OpSw, isa.OpSwNB:
		return m.WriteWord(addr, data)
	case isa.OpSb:
		return m.StoreByte(addr, byte(data))
	}
	return fmt.Errorf("StoreValue: %s is not a store", in.Op)
}

// DoSys executes a sys trap for ctx. It returns whether the machine
// halted.
func (m *Machine) DoSys(ctx *Context, in isa.Instr) (halt bool, err error) {
	switch in.Imm {
	case isa.SysHalt:
		m.Halted = true
		return true, nil
	case isa.SysPrintInt:
		fmt.Fprintf(m.Out, "%d", ctx.Reg[isa.RegV0])
	case isa.SysPrintChar:
		fmt.Fprintf(m.Out, "%c", rune(ctx.Reg[isa.RegV0]))
	case isa.SysPrintStr:
		s, err := m.StringAt(uint32(ctx.Reg[isa.RegV0]))
		if err != nil {
			return false, err
		}
		fmt.Fprint(m.Out, s)
	case isa.SysCycle:
		ctx.SetReg(isa.RegV0, int32(m.CycleFn()))
	case isa.SysCheckpoint:
		m.CheckpointRequested = true
	case isa.SysPrintFloat:
		fmt.Fprintf(m.Out, "%g", f32(ctx.Reg[isa.RegV0]))
	default:
		return false, fmt.Errorf("unknown sys code %d", in.Imm)
	}
	return false, nil
}
