package funcmodel_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"xmtgo/internal/asm"
	"xmtgo/internal/sim/funcmodel"
)

func newMachine(t *testing.T, src string) *funcmodel.Machine {
	t.Helper()
	p := mustProgram(t, src)
	m, err := funcmodel.New(p, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoryAccessors(t *testing.T) {
	m := newMachine(t, "\t.text\nmain: sys 0\n")
	base := asm.DataBase
	if err := m.WriteWord(base, -12345); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(base)
	if err != nil || v != -12345 {
		t.Fatalf("word: %d, %v", v, err)
	}
	if err := m.StoreByte(base+1, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := m.LoadByte(base + 1)
	if err != nil || b != 0xAB {
		t.Fatalf("byte: %x, %v", b, err)
	}
	if _, err := m.ReadWord(base + 2); err == nil {
		t.Fatal("unaligned read must fault")
	}
	if err := m.WriteWord(1<<20, 0); err == nil {
		t.Fatal("out-of-range write must fault")
	}
	if _, err := m.ReadWord(1 << 21); err == nil {
		t.Fatal("out-of-range read must fault")
	}
}

// Property: Psm returns the old value and accumulates exactly.
func TestPsmAccumulationProperty(t *testing.T) {
	m := newMachine(t, "\t.text\nmain: sys 0\n")
	addr := asm.DataBase
	f := func(incs []int16) bool {
		if err := m.WriteWord(addr, 0); err != nil {
			return false
		}
		var sum int32
		for _, inc := range incs {
			old, err := m.Psm(addr, int32(inc))
			if err != nil || old != sum {
				return false
			}
			sum += int32(inc)
		}
		v, err := m.ReadWord(addr)
		return err == nil && v == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ps over a global register hands back the running count for
// any 0/1 increment sequence and rejects other increments.
func TestPsSemanticsProperty(t *testing.T) {
	m := newMachine(t, "\t.text\nmain: sys 0\n")
	f := func(bits []bool) bool {
		m.G[5] = 0
		var sum int32
		for _, b := range bits {
			inc := int32(0)
			if b {
				inc = 1
			}
			old, err := m.Ps(5, inc)
			if err != nil || old != sum {
				return false
			}
			sum += inc
		}
		return m.G[5] == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ps(5, 2); err == nil {
		t.Fatal("ps must reject increments outside {0,1}")
	}
}

func TestStringAt(t *testing.T) {
	m := newMachine(t, "\t.data\ns: .asciiz \"abc\"\n\t.text\nmain: sys 0\n")
	addr, _ := m.Prog.SymAddr("s")
	s, err := m.StringAt(addr)
	if err != nil || s != "abc" {
		t.Fatalf("%q, %v", s, err)
	}
	if _, err := m.StringAt(1 << 21); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestRunBudget(t *testing.T) {
	m := newMachine(t, "\t.text\nmain: j main\n")
	err := m.Run(100)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestJalJrCallChain(t *testing.T) {
	src := `
        .text
main:   jal f
        move $v0, $v1
        sys  1
        sys  0
f:      jal g
        addiu $v1, $v1, 1
        jr   $ra2
g:      addiu $v1, $zero, 40
        jr   $ra
`
	// f must preserve $ra across its call; do it manually via $t9.
	src = strings.Replace(src, "f:      jal g",
		"f:      move $t9, $ra\n        jal g", 1)
	src = strings.Replace(src, "jr   $ra2", "jr   $t9", 1)
	p := mustProgram(t, src)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "41" {
		t.Fatalf("got %q", out.String())
	}
}

func TestVolatileAndCheckpointTraps(t *testing.T) {
	src := `
        .text
main:   sys 5
        sys 0
`
	m := newMachine(t, src)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if !m.CheckpointRequested {
		t.Fatal("checkpoint trap not latched")
	}
}

func TestSpawnInsideSpawnFails(t *testing.T) {
	src := `
        .text
main:   li $a0, 0
        li $a1, 1
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps $tid, g63
        chkid $tid
        spawn $a0, $a1
        join
        j L
        join
        sys 0
`
	// Note: the assembler rejects textually nested spawns, so this source
	// cannot even assemble — nesting is caught at the earliest stage.
	u, err := asm.Parse("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Assemble(u); err == nil {
		t.Fatal("nested spawn must be rejected")
	}
}

func TestByteLoadsSignExtension(t *testing.T) {
	src := `
        .data
b:      .byte 0xFF, 0x7F
        .text
main:   la   $t0, b
        lb   $v0, 0($t0)
        sys  1
        sys  2
        lbu  $v0, 0($t0)
        sys  1
        sys  0
`
	src = strings.Replace(src, "sys  2", "addiu $v0, $zero, 32\n        sys 2", 1)
	p := mustProgram(t, src)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "-1 255" {
		t.Fatalf("got %q, want %q", out.String(), "-1 255")
	}
}
