package funcmodel_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/sim/funcmodel"
)

// compactionAsm is a hand-written XMT assembly version of the paper's
// Fig. 2a array-compaction example: non-zero elements of A are copied into
// B using the ps primitive; the final count is printed.
const compactionAsm = `
        .data
A:      .word 5, 0, 3, 0, 0, 9, 1, 0
B:      .space 32
        .text
        .global main
main:
        la    $t0, A
        la    $t1, B
        grw   $zero, g0        # base = 0
        bcast $t0
        bcast $t1
        li    $a0, 0
        li    $a1, 7
        spawn $a0, $a1
Lgrab:  addiu $tid, $zero, 1
        ps    $tid, g63        # grab next virtual thread id
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t2, $t0, $t2
        lw    $t3, 0($t2)      # A[$]
        beq   $t3, $zero, Lskip
        addiu $t4, $zero, 1
        ps    $t4, g0          # inc/base prefix-sum
        sll   $t4, $t4, 2
        addu  $t4, $t1, $t4
        sw    $t3, 0($t4)      # B[inc] = A[$]
Lskip:  j     Lgrab
        join
        grr   $v0, g0
        sys   1                # print count
        sys   0                # halt
`

func mustProgram(t *testing.T, src string) *asm.Program {
	t.Helper()
	u, err := asm.Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestArrayCompactionFunctional(t *testing.T) {
	p := mustProgram(t, compactionAsm)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "4" {
		t.Fatalf("printed %q, want 4 non-zero elements", got)
	}
	// B must contain exactly the non-zero elements of A, in some order.
	bAddr, ok := p.SymAddr("B")
	if !ok {
		t.Fatal("no symbol B")
	}
	var got []int
	for i := 0; i < 4; i++ {
		v, err := m.ReadWord(bAddr + uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, int(v))
	}
	sort.Ints(got)
	want := []int{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("B = %v, want permutation of %v", got, want)
		}
	}
	if !m.Halted {
		t.Fatal("machine did not halt")
	}
}

func TestSpawnJoinSequence(t *testing.T) {
	// Fig. 2b: alternating serial and parallel sections; each spawn is an
	// implicit barrier, so the second spawn must observe the first's
	// stores.
	src := `
        .data
A:      .space 64
total:  .word 0
        .text
main:
        la    $t0, A
        bcast $t0
        li    $a0, 0
        li    $a1, 15
        spawn $a0, $a1
g1:     addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t2, $t0, $t2
        sw    $tid, 0($t2)      # A[$] = $
        j     g1
        join
        grw   $zero, g1
        bcast $t0
        li    $a0, 0
        li    $a1, 15
        spawn $a0, $a1
g2:     addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t2, $t0, $t2
        lw    $t3, 0($t2)
        psm   $t3, 64($t0)      # total += A[$]  (total is at A+64)
        j     g2
        join
        lw    $v0, 64($t0)
        sys   1
        sys   0
`
	p := mustProgram(t, src)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "120" {
		t.Fatalf("printed %q, want 120 (= sum 0..15)", got)
	}
}

func TestEmptySpawn(t *testing.T) {
	src := `
        .text
main:
        li    $a0, 5
        li    $a1, 4        # high < low: zero virtual threads
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        j     L
        join
        li    $v0, 7
        sys   1
        sys   0
`
	p := mustProgram(t, src)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "7" {
		t.Fatalf("printed %q, want 7", out.String())
	}
}

func TestPsIncrementValidation(t *testing.T) {
	src := `
        .text
main:
        li    $t0, 2
        ps    $t0, g1      # illegal: ps increment must be 0 or 1
        sys   0
`
	p := mustProgram(t, src)
	m, err := funcmodel.New(p, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "ps increment") {
		t.Fatalf("want ps increment error, got %v", err)
	}
}

func TestMemoryFault(t *testing.T) {
	src := `
        .text
main:
        lui   $t0, 0x7fff
        lw    $t1, 0($t0)
        sys   0
`
	p := mustProgram(t, src)
	m, err := funcmodel.New(p, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "memory fault") {
		t.Fatalf("want memory fault, got %v", err)
	}
}

func TestFloatOps(t *testing.T) {
	src := `
        .data
x:      .float 2.5
y:      .float 1.5
        .text
main:
        lw    $t0, x
        lw    $t1, y
        add.s $t2, $t0, $t1
        mul.s $t2, $t2, $t1     # (2.5+1.5)*1.5 = 6
        cvt.w.s $v0, $t2
        sys   1
        sys   0
`
	p := mustProgram(t, src)
	var out bytes.Buffer
	m, err := funcmodel.New(p, 1<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "6" {
		t.Fatalf("printed %q, want 6", out.String())
	}
}
