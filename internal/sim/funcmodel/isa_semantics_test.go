package funcmodel_test

import (
	"bytes"
	"fmt"
	"testing"

	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
)

// isaCase runs a snippet that leaves its result in $v0 and prints it; the
// same snippet is also run cycle-accurately so both engines agree on every
// opcode's semantics.
type isaCase struct {
	name string
	body string
	want int32
}

var isaCases = []isaCase{
	{"addu", "li $t0, 7\n li $t1, -3\n addu $v0, $t0, $t1", 4},
	{"subu", "li $t0, 7\n li $t1, 10\n subu $v0, $t0, $t1", -3},
	{"and-or-xor-nor", `
        li $t0, 0x0ff0
        li $t1, 0x00ff
        and $t2, $t0, $t1
        or  $t3, $t0, $t1
        xor $t4, $t0, $t1
        nor $t5, $t0, $t1
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4
        addu $v0, $v0, $t5`, 0x00f0 + 0x0fff + 0x0f0f + ^int32(0x0fff)},
	{"slt-sltu", `
        li $t0, -1
        li $t1, 1
        slt  $t2, $t0, $t1
        sltu $t3, $t0, $t1
        sll  $t2, $t2, 1
        addu $v0, $t2, $t3`, 2},
	{"slti-sltiu", `
        li $t0, -5
        slti  $t1, $t0, -4
        sltiu $t2, $t0, 3
        sll $t1, $t1, 1
        addu $v0, $t1, $t2`, 2},
	{"andi-ori-xori", `
        li $t0, 0x7fff
        andi $t1, $t0, 0x00f0
        ori  $t2, $t0, 0x8000
        xori $t3, $t0, 0xffff
        addu $v0, $t1, $t2
        addu $v0, $v0, $t3`, 0x00f0 + 0xffff + 0x8000},
	{"shifts-imm", `
        li  $t0, -16
        sll $t1, $t0, 2
        srl $t2, $t0, 28
        sra $t3, $t0, 2
        addu $v0, $t1, $t2
        addu $v0, $v0, $t3`, -64 + 15 + -4},
	{"shifts-var", `
        li  $t0, -16
        li  $t4, 2
        li  $t5, 28
        sllv $t1, $t0, $t4
        srlv $t2, $t0, $t5
        srav $t3, $t0, $t4
        addu $v0, $t1, $t2
        addu $v0, $v0, $t3`, -64 + 15 + -4},
	{"lui", "lui $v0, 5", 5 << 16},
	{"mul-div-rem", `
        li $t0, -17
        li $t1, 5
        mul $t2, $t0, $t1
        div $t3, $t0, $t1
        rem $t4, $t0, $t1
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4`, -85 + -3 + -2},
	{"mulu-divu-remu", `
        li $t0, -2
        li $t1, 3
        mulu $t2, $t0, $t1
        divu $t3, $t0, $t1
        remu $t4, $t0, $t1
        addu $v0, $t2, $t3
        xor  $v0, $v0, $t4`, muluDivuRemuWant()},
	{"float-arith", `
        li $t0, 0x40400000      # 3.0
        li $t1, 0x3f000000      # 0.5
        add.s $t2, $t0, $t1     # 3.5
        sub.s $t3, $t0, $t1     # 2.5
        mul.s $t4, $t2, $t3     # 8.75
        div.s $t5, $t4, $t1     # 17.5
        cvt.w.s $v0, $t5`, 17},
	{"float-unary", `
        li $t0, 9
        cvt.s.w $t1, $t0
        sqrt.s $t2, $t1         # 3.0
        neg.s  $t3, $t2         # -3.0
        abs.s  $t4, $t3         # 3.0
        add.s  $t5, $t2, $t4    # 6.0
        cvt.w.s $v0, $t5`, 6},
	{"float-compare", `
        li $t0, 0x40000000      # 2.0
        li $t1, 0x40400000      # 3.0
        c.lt.s $t2, $t0, $t1
        c.le.s $t3, $t1, $t1
        c.eq.s $t4, $t0, $t1
        sll $t2, $t2, 2
        sll $t3, $t3, 1
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4`, 6},
	{"branches", `
        li $t0, -1
        li $v0, 0
        bltz $t0, L1
        li $v0, 100
L1:     addiu $v0, $v0, 1
        bgez $t0, L2
        addiu $v0, $v0, 2
L2:     blez $t0, L3
        addiu $v0, $v0, 100
L3:     li $t1, 1
        bgtz $t1, L4
        addiu $v0, $v0, 100
L4:     addiu $v0, $v0, 4`, 7},
	{"bytes", `
        la $t0, scratch
        li $t1, -2
        sb $t1, 0($t0)
        lb  $t2, 0($t0)
        lbu $t3, 0($t0)
        addu $v0, $t2, $t3`, -2 + 254},
	{"grr-grw", `
        li $t0, 99
        grw $t0, g7
        grr $v0, g7`, 99},
	{"psm-serial", `
        la $t0, scratch
        li $t1, 40
        sw $t1, 0($t0)
        li $t2, 2
        psm $t2, 0($t0)     # t2 = old (40), mem = 42
        lw $t3, 0($t0)
        addu $v0, $t2, $t3`, 82},
}

func muluDivuRemuWant() int32 {
	x := uint32(0xfffffffe)
	mul := int32(x * 3)
	div := int32(x / 3)
	rem := int32(x % 3)
	return (mul + div) ^ rem
}

func TestISASemanticsBothModes(t *testing.T) {
	for _, tc := range isaCases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`
        .data
scratch: .word 0, 0
        .text
main:
%s
        sys 1
        sys 0
`, tc.body)
			p := mustProgram(t, src)
			var fOut bytes.Buffer
			m, err := funcmodel.New(p, 1<<20, &fOut)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(100000); err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprint(tc.want)
			if fOut.String() != want {
				t.Fatalf("functional: got %s, want %s", fOut.String(), want)
			}
			var cOut bytes.Buffer
			sys, err := cycle.New(p, config.FPGA64(), &cOut)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(1_000_000); err != nil {
				t.Fatal(err)
			}
			if cOut.String() != want {
				t.Fatalf("cycle: got %s, want %s", cOut.String(), want)
			}
		})
	}
}
