// Package funcmodel implements XMTSim's functional model: the operational
// definition of the instructions and the architectural state — registers,
// global registers, shared memory (paper §III-A, Fig. 3). The
// cycle-accurate model fetches decoded instructions from here and returns
// them for execution; the package also provides the fast functional
// simulation mode, which serializes the parallel sections and is used as a
// debugging tool and as the correctness oracle in tests.
package funcmodel

import (
	"fmt"
	"io"
	"sync"

	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
)

// Context is the architectural state of one hardware thread context: the
// Master TCU or one parallel TCU.
type Context struct {
	ID       int // -1 for the master, TCU index otherwise
	IsMaster bool
	Reg      [isa.NumRegs]int32
	PC       int // instruction index
}

// SetReg writes a register, keeping $zero hard-wired.
func (c *Context) SetReg(r isa.Reg, v int32) {
	if r != isa.RegZero {
		c.Reg[r] = v
	}
}

// MemFault is returned for accesses outside the simulated memory.
type MemFault struct {
	Addr uint32
	Op   string
}

func (e *MemFault) Error() string {
	return fmt.Sprintf("memory fault: %s at 0x%08x", e.Op, e.Addr)
}

// RuntimeError wraps an execution error with its program location.
type RuntimeError struct {
	PC   int
	Line int
	In   isa.Instr
	Err  error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error at instruction %d (asm line %d, %q): %v", e.PC, e.Line, e.In, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// Machine is the functional model: shared memory, global registers, the
// master context and the spawn-serialization state of the fast functional
// mode.
type Machine struct {
	Prog *asm.Program
	Mem  []byte
	G    [isa.NumGRegs]int32

	Master Context

	// Out receives sys-trap printf output (Fig. 3 "Printf output").
	Out io.Writer

	Halted bool
	// CheckpointRequested is set by the sys checkpoint trap and consumed
	// by the driving simulator.
	CheckpointRequested bool

	// CycleFn supplies the value of the sys cycle trap. The cycle-accurate
	// model installs the real cycle counter; the functional mode counts
	// executed instructions instead.
	CycleFn func() int64

	// InstrCount counts functionally executed instructions.
	InstrCount uint64

	// Spawn serialization state (functional mode runs parallel sections on
	// a single virtual TCU whose grab-loop naturally serializes all
	// virtual threads).
	inParallel bool
	spawnLow   int32
	spawnHigh  int32
	joinIdx    int
	parallel   Context
	savedPC    int

	// pendingBcast accumulates bcast-ed master registers; applied to TCU
	// contexts at the next spawn.
	pendingBcastMask uint32
	pendingBcast     [isa.NumRegs]int32

	// Trace, when non-nil, is called for each executed instruction.
	Trace func(ctx *Context, in isa.Instr)

	// Dirty-region watermarks for memory recycling (ReleaseMemory): every
	// mutation below memHalf raises dirtyLoMax (exclusive), every mutation
	// at or above it lowers dirtyHiMin (inclusive). The split matches the
	// usual layout — data and heap grow up from the bottom, the serial
	// stack grows down from the top — so a released buffer is re-zeroed in
	// two small ranges instead of its full length.
	memHalf    uint32
	dirtyLoMax uint32
	dirtyHiMin uint32
}

// memPool recycles shared-memory buffers between runs, bucketed by size.
// Zeroing tens of megabytes per simulation dominated allocation cost in
// batch runs (mallocgc clears large objects); recycled buffers are instead
// re-zeroed over just their dirty watermark ranges at release.
var memPool struct {
	mu   sync.Mutex
	bufs map[uint32][][]byte
}

const memPoolPerSize = 4

func acquireMem(size uint32) []byte {
	memPool.mu.Lock()
	defer memPool.mu.Unlock()
	q := memPool.bufs[size]
	if n := len(q); n > 0 {
		b := q[n-1]
		q[n-1] = nil
		memPool.bufs[size] = q[:n-1]
		return b
	}
	return make([]byte, size)
}

// ReleaseMemory re-zeroes the machine's dirty memory ranges and returns the
// buffer to the recycling pool. The machine must not be used afterwards.
// Optional: callers that run one simulation and exit gain nothing from it.
func (m *Machine) ReleaseMemory() {
	b := m.Mem
	if b == nil {
		return
	}
	m.Mem = nil
	lo, hi := m.dirtyLoMax, m.dirtyHiMin
	if lo > uint32(len(b)) {
		lo = uint32(len(b))
	}
	for i := range b[:lo] {
		b[i] = 0
	}
	if hi < lo {
		hi = lo
	}
	for i := range b[hi:] {
		b[hi+uint32(i)] = 0
	}
	size := uint32(len(b))
	memPool.mu.Lock()
	defer memPool.mu.Unlock()
	if memPool.bufs == nil {
		memPool.bufs = make(map[uint32][][]byte)
	}
	if len(memPool.bufs[size]) < memPoolPerSize {
		memPool.bufs[size] = append(memPool.bufs[size], b)
	}
}

// MarkMemDirty widens the dirty watermarks for an external mutation of
// m.Mem (fault injection, checkpoint restore). lo..hi is a byte range,
// hi exclusive.
func (m *Machine) MarkMemDirty(lo, hi uint32) {
	if lo < m.memHalf {
		if hi > m.dirtyLoMax {
			m.dirtyLoMax = hi
		}
	}
	if lo >= m.memHalf || hi > m.memHalf {
		if lo < m.dirtyHiMin {
			m.dirtyHiMin = lo
		}
	}
}

// New creates a machine for prog with memBytes of shared memory and loads
// the initial data image. out receives printf output (may be nil).
func New(prog *asm.Program, memBytes uint32, out io.Writer) (*Machine, error) {
	if memBytes == 0 {
		memBytes = asm.DefaultMemSize
	}
	if uint64(asm.DataBase)+uint64(len(prog.Data)) > uint64(memBytes) {
		return nil, fmt.Errorf("funcmodel: data segment (%d bytes) exceeds memory size %d", len(prog.Data), memBytes)
	}
	if out == nil {
		out = io.Discard
	}
	m := &Machine{Prog: prog, Mem: acquireMem(memBytes), Out: out}
	m.memHalf = memBytes / 2
	m.dirtyHiMin = memBytes
	copy(m.Mem[asm.DataBase:], prog.Data)
	m.MarkMemDirty(asm.DataBase, asm.DataBase+uint32(len(prog.Data)))
	m.Master = Context{ID: -1, IsMaster: true, PC: prog.Entry}
	// The serial stack starts at the top of the simulated memory (the
	// asm.StackTop constant is the default for the default memory size).
	sp := int32(memBytes &^ 7)
	m.Master.Reg[isa.RegSP] = sp
	m.Master.Reg[isa.RegFP] = sp
	m.CycleFn = func() int64 { return int64(m.InstrCount) }
	return m, nil
}

// InParallel reports whether the machine is inside a serialized spawn.
func (m *Machine) InParallel() bool { return m.inParallel }

// Quiescent reports whether the machine is at an architecturally quiescent
// point: serial mode with no pending bcast registers. Checkpoints taken at
// quiescent points are complete (checkpoint.State carries no spawn or
// broadcast state) and therefore backend-agnostic — a quiescent stop under
// one functional backend resumes exactly under the other.
func (m *Machine) Quiescent() bool { return !m.inParallel && m.pendingBcastMask == 0 }

// WidenDirty merges externally tracked dirty watermarks, for backends (the
// funcvm bytecode VM) that write m.Mem directly instead of through
// WriteWord/StoreByte. loMax is the exclusive end of mutations below the
// memory midpoint; hiMin is the lowest mutated address at or above it.
func (m *Machine) WidenDirty(loMax, hiMin uint32) {
	if loMax > m.dirtyLoMax {
		m.dirtyLoMax = loMax
	}
	if hiMin < m.dirtyHiMin {
		m.dirtyHiMin = hiMin
	}
}

// SpawnBounds returns the bounds of the active spawn region.
func (m *Machine) SpawnBounds() (low, high int32) { return m.spawnLow, m.spawnHigh }

// ReadWord reads a 32-bit little-endian word.
func (m *Machine) ReadWord(addr uint32) (int32, error) {
	if addr%4 != 0 {
		return 0, &MemFault{Addr: addr, Op: "unaligned load"}
	}
	if int64(addr)+4 > int64(len(m.Mem)) {
		return 0, &MemFault{Addr: addr, Op: "load"}
	}
	return int32(uint32(m.Mem[addr]) | uint32(m.Mem[addr+1])<<8 |
		uint32(m.Mem[addr+2])<<16 | uint32(m.Mem[addr+3])<<24), nil
}

// WriteWord writes a 32-bit little-endian word.
func (m *Machine) WriteWord(addr uint32, v int32) error {
	if addr%4 != 0 {
		return &MemFault{Addr: addr, Op: "unaligned store"}
	}
	if int64(addr)+4 > int64(len(m.Mem)) {
		return &MemFault{Addr: addr, Op: "store"}
	}
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
	m.Mem[addr+2] = byte(v >> 16)
	m.Mem[addr+3] = byte(v >> 24)
	if addr < m.memHalf {
		if addr+4 > m.dirtyLoMax {
			m.dirtyLoMax = addr + 4
		}
	} else if addr < m.dirtyHiMin {
		m.dirtyHiMin = addr
	}
	return nil
}

// LoadByte reads one byte.
func (m *Machine) LoadByte(addr uint32) (byte, error) {
	if int64(addr) >= int64(len(m.Mem)) {
		return 0, &MemFault{Addr: addr, Op: "load byte"}
	}
	return m.Mem[addr], nil
}

// StoreByte writes one byte.
func (m *Machine) StoreByte(addr uint32, v byte) error {
	if int64(addr) >= int64(len(m.Mem)) {
		return &MemFault{Addr: addr, Op: "store byte"}
	}
	m.Mem[addr] = v
	if addr < m.memHalf {
		if addr+1 > m.dirtyLoMax {
			m.dirtyLoMax = addr + 1
		}
	} else if addr < m.dirtyHiMin {
		m.dirtyHiMin = addr
	}
	return nil
}

// Ps performs the global-register prefix-sum: base g is atomically
// incremented by inc (which the hardware restricts to 0 or 1) and the old
// value is returned.
func (m *Machine) Ps(g isa.GReg, inc int32) (int32, error) {
	if inc != 0 && inc != 1 {
		return 0, fmt.Errorf("ps increment must be 0 or 1, got %d", inc)
	}
	old := m.G[g]
	m.G[g] = old + inc
	return old, nil
}

// Psm performs the prefix-sum-to-memory: mem[addr] is atomically
// incremented by any signed 32-bit inc and the old value returned.
func (m *Machine) Psm(addr uint32, inc int32) (int32, error) {
	old, err := m.ReadWord(addr)
	if err != nil {
		return 0, err
	}
	if err := m.WriteWord(addr, old+inc); err != nil {
		return 0, err
	}
	return old, nil
}

// StringAt reads a NUL-terminated string for the sys print-string trap.
func (m *Machine) StringAt(addr uint32) (string, error) {
	var b []byte
	for {
		c, err := m.LoadByte(addr)
		if err != nil {
			return "", err
		}
		if c == 0 {
			return string(b), nil
		}
		if len(b) > 1<<16 {
			return "", fmt.Errorf("unterminated string at 0x%08x", addr)
		}
		b = append(b, c)
		addr++
	}
}
