package funcmodel

import (
	"fmt"

	"xmtgo/internal/isa"
)

// This file implements the fast functional simulation mode (paper §III-A):
// the cycle-accurate model is replaced by a simplified mechanism that
// serializes the parallel sections of code. A single virtual TCU runs the
// spawn region; its ps/chkid grab-loop naturally pulls every virtual thread
// id in order, so all virtual threads execute back to back. The mode is
// orders of magnitude faster than cycle-accurate simulation and is used as
// a debugging tool — but, exactly as the paper warns, it cannot reveal
// concurrency bugs, because memory operations never reorder.

// Current returns the context the functional mode executes next.
func (m *Machine) Current() *Context {
	if m.inParallel {
		return &m.parallel
	}
	return &m.Master
}

// Step executes one instruction in functional mode. It returns false when
// the machine has halted.
func (m *Machine) Step() (bool, error) {
	if m.Halted {
		return false, nil
	}
	ctx := m.Current()
	if ctx.PC < 0 || ctx.PC >= len(m.Prog.Text) {
		return false, fmt.Errorf("funcmodel: PC %d outside program (context %d)", ctx.PC, ctx.ID)
	}
	in := m.Prog.Text[ctx.PC]
	pc := ctx.PC
	ctx.PC++
	m.InstrCount++
	if m.Trace != nil {
		m.Trace(ctx, in)
	}

	wrap := func(err error) error {
		if err == nil {
			return nil
		}
		return &RuntimeError{PC: pc, Line: in.Line, In: in, Err: err}
	}

	meta := in.Op.Meta()
	switch {
	case in.Op == isa.OpSys:
		halt, err := m.DoSys(ctx, in)
		if err != nil {
			return false, wrap(err)
		}
		return !halt, nil
	case in.Op == isa.OpSpawn:
		return true, wrap(m.startSpawn(ctx, in, pc))
	case in.Op == isa.OpJoin:
		// Falling into join ends the current virtual thread's work; with
		// the single serialized TCU that means the spawn is complete.
		if m.inParallel {
			m.endSpawn()
			return true, nil
		}
		return false, wrap(fmt.Errorf("join executed in serial mode"))
	case in.Op == isa.OpChkid:
		id := ctx.Reg[in.Rd]
		if !m.inParallel {
			return false, wrap(fmt.Errorf("chkid executed in serial mode"))
		}
		if id > m.spawnHigh {
			// All virtual threads done (single serialized TCU): join.
			m.endSpawn()
		}
		return true, nil
	case in.Op == isa.OpPs:
		old, err := m.Ps(in.G, ctx.Reg[in.Rd])
		if err != nil {
			return false, wrap(err)
		}
		ctx.SetReg(in.Rd, old)
		return true, nil
	case in.Op == isa.OpGrr:
		ctx.SetReg(in.Rd, m.G[in.G])
		return true, nil
	case in.Op == isa.OpGrw:
		m.G[in.G] = ctx.Reg[in.Rd]
		return true, nil
	case in.Op == isa.OpBcast:
		if m.inParallel {
			return false, wrap(fmt.Errorf("bcast in parallel code"))
		}
		m.pendingBcastMask |= 1 << uint(in.Rd)
		m.pendingBcast[in.Rd] = ctx.Reg[in.Rd]
		return true, nil
	case in.Op == isa.OpFence:
		return true, nil // functional mode has no pending memory operations
	case in.Op == isa.OpPsm:
		addr := m.EffAddr(ctx, in)
		old, err := m.Psm(addr, ctx.Reg[in.Rd])
		if err != nil {
			return false, wrap(err)
		}
		ctx.SetReg(in.Rd, old)
		return true, nil
	case in.Op == isa.OpPref:
		// Prefetch is a hint; functional mode validates the address only.
		_, err := m.ReadWord(m.EffAddr(ctx, in) &^ 3)
		return true, wrap(err)
	case meta.Load:
		v, err := m.LoadValue(in, m.EffAddr(ctx, in))
		if err != nil {
			return false, wrap(err)
		}
		ctx.SetReg(in.Rd, v)
		return true, nil
	case meta.Store:
		return true, wrap(m.StoreValue(in, m.EffAddr(ctx, in), ctx.Reg[in.Rd]))
	case meta.Branch:
		taken, target, err := m.EvalBranch(ctx, in)
		if err != nil {
			return false, wrap(err)
		}
		if taken {
			if target < 0 || target >= len(m.Prog.Text) {
				return false, wrap(fmt.Errorf("branch target %d outside program", target))
			}
			ctx.PC = target
		}
		return true, nil
	default:
		return true, wrap(m.ExecCompute(ctx, in))
	}
}

func (m *Machine) startSpawn(ctx *Context, in isa.Instr, pc int) error {
	if m.inParallel {
		return fmt.Errorf("nested spawn")
	}
	region := m.Prog.RegionOf(pc + 1)
	if region == nil || region.Spawn != pc {
		return fmt.Errorf("spawn at %d has no linked region", pc)
	}
	low, high := ctx.Reg[in.Rs], ctx.Reg[in.Rt]
	m.spawnLow, m.spawnHigh = low, high
	m.joinIdx = region.Join
	m.savedPC = region.Join + 1
	m.G[isa.GRegSpawn] = low
	if low > high {
		// Empty spawn: no virtual threads; resume after join immediately.
		m.Master.PC = m.savedPC
		m.pendingBcastMask = 0
		return nil
	}
	m.inParallel = true
	m.parallel = Context{ID: 0}
	for r := 0; r < isa.NumRegs; r++ {
		if m.pendingBcastMask&(1<<uint(r)) != 0 {
			m.parallel.Reg[r] = m.pendingBcast[r]
		}
	}
	m.pendingBcastMask = 0
	m.parallel.PC = pc + 1
	return nil
}

func (m *Machine) endSpawn() {
	m.inParallel = false
	m.Master.PC = m.savedPC
}

// RunTo executes until at least target instructions have run and the
// machine is Quiescent, or until it halts or errors. It mirrors the funcvm
// backend's RunTo so either backend can stop at a backend-agnostic
// checkpoint boundary (docs/SIMULATOR.md §Functional backends).
func (m *Machine) RunTo(target uint64) error {
	for !m.Halted {
		if m.InstrCount >= target && m.Quiescent() {
			return nil
		}
		ok, err := m.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// Run executes until halt or an error, with an instruction budget guarding
// against runaway programs (budget <= 0 means no limit).
func (m *Machine) Run(budget uint64) error {
	for {
		ok, err := m.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if budget > 0 && m.InstrCount >= budget {
			return fmt.Errorf("funcmodel: instruction budget %d exhausted (runaway program?)", budget)
		}
	}
}
