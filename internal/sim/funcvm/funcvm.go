// Package funcvm is the direct-threaded bytecode backend for the
// functional model (ROADMAP open item 3). The assembled program is lowered
// once (lower.go) into a flat stream of words whose operands — register
// file slots, folded immediates, absolute branch targets, spawn join
// points, sys trap codes — are fully pre-resolved, and a dispatch loop of
// func-valued handlers executes that stream with no per-step ISA decode.
//
// The VM is a drop-in alternative to funcmodel's Step interpreter: it
// attaches to an existing funcmodel.Machine, executes against the
// machine's memory and global registers in place, and synchronizes the
// master context, instruction count and dirty-memory watermarks back on
// every stop, so checkpoints, conformance comparisons and the
// observability surface are backend-agnostic. Architectural results —
// memory, registers, printf output, instruction counts and error
// messages (modulo the funcvm:/funcmodel: prefix on fetch/budget
// errors) — are bit-identical to the interpreter on every program.
package funcvm

import (
	"errors"
	"fmt"
	"math"

	"xmtgo/internal/isa"

	"xmtgo/internal/sim/funcmodel"
)

// Stop reasons of one dispatch burst. rCycle and rOutside exist so the
// dispatch loop can track the instruction count in a register instead of
// a VM field: the only handlers that need an exact live count (the sys
// cycle trap) or a count adjustment (the fall-off sentinel, which is a
// fetch error, not an executed instruction) stop the burst and let the
// loop's stop-path accounting make the count exact first.
const (
	rHalt = iota + 1
	rErr
	rBudget
	rCheckpoint
	rCycle
	rOutside
)

// VM executes a lowered program against a funcmodel.Machine's
// architectural state. Create one with Attach (or AttachCode to share a
// pre-lowered Code across machines).
type VM struct {
	// regs is the flat register file: slots 0..31 are the architectural
	// registers of the executing context, slot zeroSink absorbs writes to
	// $zero. Sized so uint8 slot indexing needs no bounds checks.
	regs [regSlots]int32

	m    *funcmodel.Machine
	code []word
	text []isa.Instr
	mem  []byte
	// gregs aliases the machine's global register file, so grr/grw/ps
	// update the machine directly and no sync step is needed for G.
	gregs *[isa.NumGRegs]int32

	pc      int32
	textLen int32
	icount  uint64

	// Serialized-spawn state, mirroring the interpreter: the parallel
	// section runs on this same register file while the master context is
	// parked in masterRegs/masterPC.
	inParallel       bool
	spawnLow         int32
	spawnHigh        int32
	savedW           *word // post-join word, jumped to by endSpawn
	masterPC         int32
	masterRegs       [isa.NumRegs]int32
	pendingBcastMask uint32
	pendingBcast     [isa.NumRegs]int32

	// Dirty-memory watermarks for the machine's pooled-buffer recycling,
	// maintained locally (stores bypass Machine.WriteWord) and merged via
	// Machine.WidenDirty at every sync-out.
	memHalf uint32
	dirtyLo uint32
	dirtyHi uint32

	err    error
	reason int

	scratch funcmodel.Context // trace-hook context, reused per instruction

	// OnCheckpoint, when set, is invoked at every sys checkpoint trap with
	// the machine fully synchronized; afterwards CheckpointRequested is
	// cleared and execution resumes. When nil the trap only sets
	// Machine.CheckpointRequested, like the interpreter's Run.
	OnCheckpoint func(*funcmodel.Machine) error
}

// Attach lowers the machine's program (reusing any cached lowering) and
// returns a VM positioned at the machine's current state. The machine must
// be quiescent — serial mode with no pending bcast — because that spawn
// bookkeeping is not exchangeable between backends.
func Attach(m *funcmodel.Machine) (*VM, error) {
	return AttachCode(m, NewCode(m.Prog))
}

// AttachCode is Attach with an explicitly shared lowered Code.
func AttachCode(m *funcmodel.Machine, c *Code) (*VM, error) {
	if c == nil || len(c.text) != len(m.Prog.Text) {
		return nil, errors.New("funcvm: lowered code does not match the machine's program")
	}
	if !m.Quiescent() {
		return nil, errors.New("funcvm: machine must be quiescent (serial mode, no pending bcast) to attach")
	}
	v := &VM{
		m:       m,
		code:    c.words,
		text:    c.text,
		textLen: int32(len(c.text)),
		gregs:   &m.G,
	}
	v.syncIn()
	return v, nil
}

// Machine returns the attached machine. Its architectural state is
// up to date whenever the VM is stopped.
func (v *VM) Machine() *funcmodel.Machine { return v.m }

// InstrCount returns the number of instructions executed so far.
func (v *VM) InstrCount() uint64 { return v.icount }

// InParallel reports whether the VM is inside a serialized spawn.
func (v *VM) InParallel() bool { return v.inParallel }

// Quiescent mirrors Machine.Quiescent for the VM's live state.
func (v *VM) Quiescent() bool { return !v.inParallel && v.pendingBcastMask == 0 }

// Current returns a copy of the architecturally-current context, mirroring
// Machine.Current: the master in serial mode, virtual-TCU context 0 inside
// a spawn.
func (v *VM) Current() funcmodel.Context {
	c := funcmodel.Context{ID: -1, IsMaster: true, PC: int(v.pc)}
	if v.inParallel {
		c.ID, c.IsMaster = 0, false
	}
	copy(c.Reg[:], v.regs[:isa.NumRegs])
	return c
}

// syncIn loads the machine's (serial, quiescent) state into the VM. Called
// at attach and after an OnCheckpoint callback, which may have mutated the
// master context or restored memory in place.
func (v *VM) syncIn() {
	v.mem = v.m.Mem
	v.memHalf = uint32(len(v.mem)) / 2
	v.dirtyLo = 0
	v.dirtyHi = uint32(len(v.mem))
	v.icount = v.m.InstrCount
	v.pc = int32(v.m.Master.PC)
	copy(v.regs[:isa.NumRegs], v.m.Master.Reg[:])
}

// syncOut publishes the VM state back to the machine: instruction count,
// dirty watermarks, and the master context. Inside a spawn the master is
// parked exactly where the interpreter leaves it (registers untouched, PC
// one past the spawn); the live parallel context stays VM-local and is
// observable via Current.
func (v *VM) syncOut() {
	v.m.InstrCount = v.icount
	v.m.WidenDirty(v.dirtyLo, v.dirtyHi)
	v.dirtyLo = 0
	v.dirtyHi = uint32(len(v.mem))
	if v.inParallel {
		v.m.Master.Reg = v.masterRegs
		v.m.Master.PC = int(v.masterPC)
	} else {
		copy(v.m.Master.Reg[:], v.regs[:isa.NumRegs])
		v.m.Master.PC = int(v.pc)
	}
}

// dirty widens the local watermarks for a store of n bytes at addr.
func (v *VM) dirty(addr, n uint32) {
	if addr < v.memHalf {
		if addr+n > v.dirtyLo {
			v.dirtyLo = addr + n
		}
	} else if addr < v.dirtyHi {
		v.dirtyHi = addr
	}
}

// endSpawn leaves parallel mode and resumes the parked master after the
// join, mirroring the interpreter's endSpawn.
func (v *VM) endSpawn() *word {
	v.inParallel = false
	copy(v.regs[:isa.NumRegs], v.masterRegs[:])
	return v.savedW
}

// fail records a wrapped runtime error, identical in shape and message to
// the interpreter's, and stops dispatch. The failing instruction's index
// is recovered from the word's own fallthrough pc.
func (v *VM) fail(w *word, err error) *word {
	pc := int(w.next) - 1
	v.pc = w.next // the interpreter advances PC before executing
	v.err = &funcmodel.RuntimeError{PC: pc, Line: v.text[pc].Line, In: v.text[pc], Err: err}
	v.reason = rErr
	return nil
}

// run is the hot dispatch loop: execute from v.pc until a handler stops
// (halt, error, checkpoint) or limit instructions have run in total.
// Control flow is pointer-threaded: each handler returns the next word
// directly (nil to stop), so the loop performs no bounds-checked indexing
// and no pc arithmetic — the stopping handler or the budget path below
// are the only places the numeric pc is materialized.
func (v *VM) run(limit uint64) int {
	pc := v.pc
	if pc < 0 || pc > v.textLen {
		id := -1
		if v.inParallel {
			id = 0
		}
		v.err = fmt.Errorf("funcvm: PC %d outside program (context %d)", pc, id)
		v.reason = rErr
		return rErr
	}
	w := &v.code[pc]
	// Count instructions in a register: n counts down from the burst's
	// allowance and v.icount is settled once at the stop. Handlers never
	// see a live count (hSysCycle and hOutside stop the burst instead).
	// A burst always executes at least one instruction, like the
	// interpreter's step loop.
	rem := uint64(1)
	if limit > v.icount {
		rem = limit - v.icount
	}
	n := rem
	for {
		n--
		if w = w.run(v, w); w == nil {
			v.icount += rem - n
			if v.reason == rOutside {
				v.icount-- // the sentinel is a fetch error, not an instruction
				v.reason = rErr
			}
			return v.reason
		}
		if n == 0 {
			v.icount += rem
			v.pc = w.next - 1 // every word's next is its own index + 1
			return rBudget
		}
	}
}

// runTraced is the dispatch loop with the machine's Trace hook active: the
// hook sees the same context snapshot (PC already advanced, registers
// pre-execution) as the interpreter's.
func (v *VM) runTraced(limit uint64) int {
	pc := v.pc
	if pc < 0 || pc > v.textLen {
		id := -1
		if v.inParallel {
			id = 0
		}
		v.err = fmt.Errorf("funcvm: PC %d outside program (context %d)", pc, id)
		v.reason = rErr
		return rErr
	}
	w := &v.code[pc]
	rem := uint64(1)
	if limit > v.icount {
		rem = limit - v.icount
	}
	n := rem
	for {
		if idx := w.next - 1; idx < v.textLen && v.m.Trace != nil {
			v.scratch = funcmodel.Context{ID: -1, IsMaster: true, PC: int(idx) + 1}
			if v.inParallel {
				v.scratch.ID, v.scratch.IsMaster = 0, false
			}
			copy(v.scratch.Reg[:], v.regs[:isa.NumRegs])
			v.m.Trace(&v.scratch, v.text[idx])
		}
		n--
		if w = w.run(v, w); w == nil {
			v.icount += rem - n
			if v.reason == rOutside {
				v.icount--
				v.reason = rErr
			}
			return v.reason
		}
		if n == 0 {
			v.icount += rem
			v.pc = w.next - 1
			return rBudget
		}
	}
}

func (v *VM) dispatch(limit uint64) int {
	if v.m.Trace != nil {
		return v.runTraced(limit)
	}
	return v.run(limit)
}

// handleCheckpoint services a sys checkpoint pause: with OnCheckpoint set
// the machine is synchronized, the callback runs, the request flag is
// cleared and the (possibly externally mutated) state reloaded.
func (v *VM) handleCheckpoint() error {
	v.syncOut()
	if v.OnCheckpoint == nil {
		return nil
	}
	if err := v.OnCheckpoint(v.m); err != nil {
		return err
	}
	v.m.CheckpointRequested = false
	v.syncIn()
	return nil
}

// Run executes until halt or an error, with an instruction budget guarding
// against runaway programs (budget <= 0 means no limit), mirroring
// Machine.Run.
func (v *VM) Run(budget uint64) error {
	if v.m.Halted {
		return nil
	}
	limit := uint64(math.MaxUint64)
	if budget > 0 {
		limit = budget
	}
	for {
		switch v.dispatch(limit) {
		case rHalt:
			v.syncOut()
			return nil
		case rErr:
			v.syncOut()
			return v.err
		case rBudget:
			v.syncOut()
			return fmt.Errorf("funcvm: instruction budget %d exhausted (runaway program?)", budget)
		case rCheckpoint:
			if err := v.handleCheckpoint(); err != nil {
				return err
			}
		case rCycle:
			v.serviceCycleRead()
			if v.icount >= limit {
				v.syncOut()
				return fmt.Errorf("funcvm: instruction budget %d exhausted (runaway program?)", budget)
			}
		}
	}
}

// serviceCycleRead completes a sys cycle trap: v.icount is already exact
// (the burst's stop accounting includes the trap itself), so the default
// CycleFn observes the same instruction count as under the interpreter.
func (v *VM) serviceCycleRead() {
	v.m.InstrCount = v.icount
	v.regs[2] = int32(v.m.CycleFn())
}

// RunTo executes until at least target instructions have run and the VM is
// Quiescent, or until it halts or errors. At return the machine is fully
// synchronized, so a checkpoint captured there is complete and resumable
// under either backend (mirrors Machine.RunTo).
func (v *VM) RunTo(target uint64) error {
	for !v.m.Halted {
		if v.icount >= target && v.Quiescent() {
			v.syncOut()
			return nil
		}
		limit := target
		if v.icount >= limit {
			// Past the target but not quiescent: single-step to the next
			// quiescent point (spawn regions are finite in well-formed
			// programs).
			limit = v.icount + 1
		}
		switch v.dispatch(limit) {
		case rHalt:
			v.syncOut()
			return nil
		case rErr:
			v.syncOut()
			return v.err
		case rBudget:
			// Reached the limit; loop to re-check quiescence.
		case rCheckpoint:
			if err := v.handleCheckpoint(); err != nil {
				return err
			}
		case rCycle:
			v.serviceCycleRead()
		}
	}
	return nil
}
