package funcvm_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/funcvm"
)

func mustProgram(t *testing.T, src string) *asm.Program {
	t.Helper()
	u, err := asm.Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// compactionAsm exercises the whole XMT surface: data layout, bcast, spawn,
// the ps grab-loop, chkid-terminated virtual threads, ps to a user global,
// loads/stores and sys printing.
const compactionAsm = `
        .data
A:      .word 5, 0, 3, 0, 0, 9, 1, 0
B:      .space 32
        .text
        .global main
main:
        la    $t0, A
        la    $t1, B
        grw   $zero, g0
        bcast $t0
        bcast $t1
        li    $a0, 0
        li    $a1, 7
        spawn $a0, $a1
Lgrab:  addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t2, $t0, $t2
        lw    $t3, 0($t2)
        beq   $t3, $zero, Lskip
        addiu $t4, $zero, 1
        ps    $t4, g0
        sll   $t4, $t4, 2
        addu  $t4, $t1, $t4
        sw    $t3, 0($t4)
Lskip:  j     Lgrab
        join
        grr   $v0, g0
        sys   1
        sys   0
`

// normalize maps the VM's backend-identifying error prefix onto the
// interpreter's so messages can be compared verbatim.
func normalize(err error) string {
	if err == nil {
		return ""
	}
	return strings.ReplaceAll(err.Error(), "funcvm:", "funcmodel:")
}

// runBoth executes src under the interpreter and the VM with the given
// budget and requires bit-identical architectural outcomes.
func runBoth(t *testing.T, src string, budget uint64) (*funcmodel.Machine, *funcmodel.Machine) {
	t.Helper()
	p := mustProgram(t, src)

	var outI bytes.Buffer
	mi, err := funcmodel.New(p, 1<<20, &outI)
	if err != nil {
		t.Fatal(err)
	}
	errI := mi.Run(budget)

	var outV bytes.Buffer
	mv, err := funcmodel.New(p, 1<<20, &outV)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := funcvm.Attach(mv)
	if err != nil {
		t.Fatal(err)
	}
	errV := vm.Run(budget)

	if normalize(errI) != normalize(errV) {
		t.Fatalf("error divergence:\n  interp: %v\n  vm:     %v", errI, errV)
	}
	if outI.String() != outV.String() {
		t.Fatalf("output divergence:\n  interp: %q\n  vm:     %q", outI.String(), outV.String())
	}
	if mi.Halted != mv.Halted {
		t.Fatalf("halted divergence: interp=%v vm=%v", mi.Halted, mv.Halted)
	}
	if mi.InstrCount != mv.InstrCount {
		t.Fatalf("instruction count divergence: interp=%d vm=%d", mi.InstrCount, mv.InstrCount)
	}
	if mi.G != mv.G {
		t.Fatalf("global register divergence:\n  interp: %v\n  vm:     %v", mi.G, mv.G)
	}
	if mi.Master.Reg != mv.Master.Reg || mi.Master.PC != mv.Master.PC {
		t.Fatalf("master divergence:\n  interp: PC=%d %v\n  vm:     PC=%d %v",
			mi.Master.PC, mi.Master.Reg, mv.Master.PC, mv.Master.Reg)
	}
	if !bytes.Equal(mi.Mem, mv.Mem) {
		for i := range mi.Mem {
			if mi.Mem[i] != mv.Mem[i] {
				t.Fatalf("memory divergence at 0x%08x: interp=%#x vm=%#x", i, mi.Mem[i], mv.Mem[i])
			}
		}
	}
	return mi, mv
}

func TestVMMatchesInterpreterCompaction(t *testing.T) {
	mi, _ := runBoth(t, compactionAsm, 1_000_000)
	if !mi.Halted {
		t.Fatal("program did not halt")
	}
}

func TestVMMatchesInterpreterSerial(t *testing.T) {
	// Serial-only program covering MDU, FPU, byte memory, jal/jr and the
	// full sys print set.
	src := `
        .data
S:      .asciiz "ok\n"
F:      .float 2.5
V:      .space 8
        .text
main:
        li    $t0, 100
        li    $t1, 7
        div   $t2, $t0, $t1
        rem   $t3, $t0, $t1
        mul   $t4, $t2, $t3
        la    $t5, V
        sb    $t4, 1($t5)
        lb    $t6, 1($t5)
        lbu   $t7, 1($t5)
        addu  $v0, $t6, $t7
        sys   1
        la    $a0, F
        lw    $t8, 0($a0)
        add.s $t9, $t8, $t8
        cvt.w.s $v0, $t9
        sys   1
        la    $v0, S
        sys   3
        jal   sub1
        li    $v0, 88
        sys   1
        sys   0
sub1:   jr    $ra
`
	mi, _ := runBoth(t, src, 1_000_000)
	if !mi.Halted {
		t.Fatal("program did not halt")
	}
}

func TestVMErrorParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the shared error message
	}{
		{"div-zero", "main: li $t0, 4\n li $t1, 0\n div $t2, $t0, $t1\n sys 0\n", "integer division by zero"},
		{"join-serial", "main: j LJ\n li $a0, 0\n li $a1, 0\n spawn $a0, $a1\nLJ: join\n sys 0\n", "join executed in serial mode"},
		{"chkid-serial", "main: li $t0, 1\n chkid $t0\n sys 0\n", "chkid executed in serial mode"},
		{"jr-outside", "main: li $t0, 999\n jr $t0\n sys 0\n", "branch target 999 outside program"},
		{"unaligned-load", "main: li $t0, 3\n lw $t1, 0($t0)\n sys 0\n", "unaligned load at 0x00000003"},
		{"store-fault", "main: lui $t0, 4096\n sw $t0, 0($t0)\n sys 0\n", "store at 0x10000000"},
		{"ps-bad-inc", "main: li $a0, 0\n li $a1, 1\n spawn $a0, $a1\n li $tid, 5\n ps $tid, g1\n chkid $tid\n join\n sys 0\n", "ps increment must be 0 or 1, got 5"},
		{"fall-off-end", "main: li $t0, 1\n", "outside program (context -1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustProgram(t, tc.src)
			mi, err := funcmodel.New(p, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			errI := mi.Run(10_000)
			mv, err := funcmodel.New(p, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			vm, err := funcvm.Attach(mv)
			if err != nil {
				t.Fatal(err)
			}
			errV := vm.Run(10_000)
			if errI == nil || errV == nil {
				t.Fatalf("expected errors, got interp=%v vm=%v", errI, errV)
			}
			if normalize(errI) != normalize(errV) {
				t.Fatalf("error divergence:\n  interp: %v\n  vm:     %v", errI, errV)
			}
			if !strings.Contains(normalize(errV), tc.want) {
				t.Fatalf("error %q does not contain %q", errV, tc.want)
			}
		})
	}
}

func TestVMBudgetParity(t *testing.T) {
	src := "main: j main\n"
	p := mustProgram(t, src)
	mi, _ := funcmodel.New(p, 1<<20, nil)
	errI := mi.Run(100)
	mv, _ := funcmodel.New(p, 1<<20, nil)
	vm, err := funcvm.Attach(mv)
	if err != nil {
		t.Fatal(err)
	}
	errV := vm.Run(100)
	if errI == nil || errV == nil {
		t.Fatalf("expected budget errors, got interp=%v vm=%v", errI, errV)
	}
	if normalize(errI) != normalize(errV) {
		t.Fatalf("budget error divergence:\n  interp: %v\n  vm:     %v", errI, errV)
	}
	if mi.InstrCount != 100 || mv.InstrCount != 100 {
		t.Fatalf("instruction counts: interp=%d vm=%d, want 100", mi.InstrCount, mv.InstrCount)
	}
}

func TestVMTraceParity(t *testing.T) {
	p := mustProgram(t, compactionAsm)
	collect := func(m *funcmodel.Machine) *[]string {
		var seq []string
		m.Trace = func(ctx *funcmodel.Context, in isa.Instr) {
			seq = append(seq, fmt.Sprintf("%d@%d:%s:%d", ctx.ID, ctx.PC, in.Op, ctx.Reg[isa.RegTID]))
		}
		return &seq
	}
	mi, _ := funcmodel.New(p, 1<<20, nil)
	seqI := collect(mi)
	if err := mi.Run(100_000); err != nil {
		t.Fatal(err)
	}
	mv, _ := funcmodel.New(p, 1<<20, nil)
	seqV := collect(mv)
	vm, err := funcvm.Attach(mv)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if len(*seqI) != len(*seqV) {
		t.Fatalf("trace length divergence: interp=%d vm=%d", len(*seqI), len(*seqV))
	}
	for i := range *seqI {
		if (*seqI)[i] != (*seqV)[i] {
			t.Fatalf("trace divergence at step %d: interp=%q vm=%q", i, (*seqI)[i], (*seqV)[i])
		}
	}
}

func TestVMRunToStopsQuiescent(t *testing.T) {
	p := mustProgram(t, compactionAsm)
	mv, _ := funcmodel.New(p, 1<<20, &bytes.Buffer{})
	vm, err := funcvm.Attach(mv)
	if err != nil {
		t.Fatal(err)
	}
	// Target 10 lands inside the bcast/spawn prologue or the parallel
	// region; RunTo must push on to a quiescent point.
	if err := vm.RunTo(10); err != nil {
		t.Fatal(err)
	}
	if mv.Halted {
		t.Fatal("halted before expected")
	}
	if vm.InstrCount() < 10 {
		t.Fatalf("InstrCount = %d, want >= 10", vm.InstrCount())
	}
	if !vm.Quiescent() || !mv.Quiescent() {
		t.Fatal("RunTo stopped at a non-quiescent point")
	}
	if mv.InstrCount != vm.InstrCount() {
		t.Fatalf("sync mismatch: machine=%d vm=%d", mv.InstrCount, vm.InstrCount())
	}
	// Resuming must finish the program with the same result as a straight
	// interpreter run.
	if err := vm.Run(100_000); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	mi, _ := funcmodel.New(p, 1<<20, &out)
	if err := mi.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if mi.InstrCount != mv.InstrCount || mi.G != mv.G {
		t.Fatalf("resumed run diverged: interp count=%d vm count=%d", mi.InstrCount, mv.InstrCount)
	}
}

func TestVMCheckpointCallback(t *testing.T) {
	src := `
main:
        li    $t0, 1
        sys   5
        li    $t1, 2
        sys   0
`
	p := mustProgram(t, src)
	mv, _ := funcmodel.New(p, 1<<20, nil)
	vm, err := funcvm.Attach(mv)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	vm.OnCheckpoint = func(m *funcmodel.Machine) error {
		calls++
		if !m.CheckpointRequested {
			t.Error("CheckpointRequested not set in callback")
		}
		if m.Master.Reg[isa.RegT0] != 1 {
			t.Errorf("master $t0 = %d in callback, want 1", m.Master.Reg[isa.RegT0])
		}
		return nil
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("OnCheckpoint called %d times, want 1", calls)
	}
	if mv.CheckpointRequested {
		t.Fatal("CheckpointRequested not cleared after callback")
	}
	if !mv.Halted {
		t.Fatal("program did not halt")
	}
}

func TestCodeCacheReused(t *testing.T) {
	p := mustProgram(t, compactionAsm)
	c1 := funcvm.NewCode(p)
	c2 := funcvm.NewCode(p)
	if c1 != c2 {
		t.Fatal("NewCode did not reuse the program's cached lowering")
	}
	if c1.Len() != len(p.Text) {
		t.Fatalf("Code.Len = %d, want %d", c1.Len(), len(p.Text))
	}
}

func TestAttachRequiresQuiescence(t *testing.T) {
	p := mustProgram(t, compactionAsm)
	m, _ := funcmodel.New(p, 1<<20, &bytes.Buffer{})
	// Step the interpreter into the spawn region.
	for !m.InParallel() {
		if ok, err := m.Step(); err != nil || !ok {
			t.Fatalf("stepping to spawn: ok=%v err=%v", ok, err)
		}
	}
	if _, err := funcvm.Attach(m); err == nil {
		t.Fatal("Attach succeeded on a non-quiescent machine")
	}
}
