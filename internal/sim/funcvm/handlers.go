package funcvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"xmtgo/internal/isa"

	"xmtgo/internal/sim/funcmodel"
)

// This file is intentionally a long list of tiny functions: one handler per
// lowered opcode shape. Each handler reads pre-resolved slots from its word,
// mutates the VM state, and returns the next word to execute (nil to stop
// dispatch). Error messages and ordering replicate the funcmodel
// interpreter exactly — the three-way conformance matrix and the backend
// differential fuzzer depend on bit-for-bit architectural agreement.

var (
	errNestedSpawn   = errors.New("nested spawn")
	errJoinSerial    = errors.New("join executed in serial mode")
	errChkidSerial   = errors.New("chkid executed in serial mode")
	errBcastParallel = errors.New("bcast in parallel code")
	errDivZero       = errors.New("integer division by zero")
)

func f32(v int32) float32   { return math.Float32frombits(uint32(v)) }
func fbits(f float32) int32 { return int32(math.Float32bits(f)) }

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func hNop(v *VM, w *word) *word { return w.nextw }

// --- Integer ALU ---

func hAdd(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] + v.regs[w.t]
	return w.nextw
}

func hSub(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] - v.regs[w.t]
	return w.nextw
}

func hAnd(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] & v.regs[w.t]
	return w.nextw
}

func hOr(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] | v.regs[w.t]
	return w.nextw
}

func hXor(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] ^ v.regs[w.t]
	return w.nextw
}

func hNor(v *VM, w *word) *word {
	v.regs[w.d] = ^(v.regs[w.s] | v.regs[w.t])
	return w.nextw
}

func hSlt(v *VM, w *word) *word {
	v.regs[w.d] = b2i(v.regs[w.s] < v.regs[w.t])
	return w.nextw
}

func hSltu(v *VM, w *word) *word {
	v.regs[w.d] = b2i(uint32(v.regs[w.s]) < uint32(v.regs[w.t]))
	return w.nextw
}

func hAddi(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] + w.imm
	return w.nextw
}

func hAndi(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] & w.imm
	return w.nextw
}

func hOri(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] | w.imm
	return w.nextw
}

func hXori(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] ^ w.imm
	return w.nextw
}

func hSlti(v *VM, w *word) *word {
	v.regs[w.d] = b2i(v.regs[w.s] < w.imm)
	return w.nextw
}

func hSltiu(v *VM, w *word) *word {
	v.regs[w.d] = b2i(uint32(v.regs[w.s]) < uint32(w.imm))
	return w.nextw
}

func hLui(v *VM, w *word) *word {
	v.regs[w.d] = w.imm // pre-shifted at lowering
	return w.nextw
}

// --- Shifts ---

func hSll(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] << uint(w.imm)
	return w.nextw
}

func hSrl(v *VM, w *word) *word {
	v.regs[w.d] = int32(uint32(v.regs[w.s]) >> uint(w.imm))
	return w.nextw
}

func hSra(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] >> uint(w.imm)
	return w.nextw
}

func hSllv(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] << uint(v.regs[w.t]&31)
	return w.nextw
}

func hSrlv(v *VM, w *word) *word {
	v.regs[w.d] = int32(uint32(v.regs[w.s]) >> uint(v.regs[w.t]&31))
	return w.nextw
}

func hSrav(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] >> uint(v.regs[w.t]&31)
	return w.nextw
}

// --- Multiply/divide ---

func hMul(v *VM, w *word) *word {
	v.regs[w.d] = v.regs[w.s] * v.regs[w.t]
	return w.nextw
}

func hMulu(v *VM, w *word) *word {
	v.regs[w.d] = int32(uint32(v.regs[w.s]) * uint32(v.regs[w.t]))
	return w.nextw
}

func hDiv(v *VM, w *word) *word {
	rt := v.regs[w.t]
	if rt == 0 {
		return v.fail(w, errDivZero)
	}
	v.regs[w.d] = v.regs[w.s] / rt
	return w.nextw
}

func hDivu(v *VM, w *word) *word {
	rt := v.regs[w.t]
	if rt == 0 {
		return v.fail(w, errDivZero)
	}
	v.regs[w.d] = int32(uint32(v.regs[w.s]) / uint32(rt))
	return w.nextw
}

func hRem(v *VM, w *word) *word {
	rt := v.regs[w.t]
	if rt == 0 {
		return v.fail(w, errDivZero)
	}
	v.regs[w.d] = v.regs[w.s] % rt
	return w.nextw
}

func hRemu(v *VM, w *word) *word {
	rt := v.regs[w.t]
	if rt == 0 {
		return v.fail(w, errDivZero)
	}
	v.regs[w.d] = int32(uint32(v.regs[w.s]) % uint32(rt))
	return w.nextw
}

// --- Floating point (IEEE-754 bit patterns in the unified file) ---

func hAddS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(f32(v.regs[w.s]) + f32(v.regs[w.t]))
	return w.nextw
}

func hSubS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(f32(v.regs[w.s]) - f32(v.regs[w.t]))
	return w.nextw
}

func hMulS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(f32(v.regs[w.s]) * f32(v.regs[w.t]))
	return w.nextw
}

func hDivS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(f32(v.regs[w.s]) / f32(v.regs[w.t]))
	return w.nextw
}

func hAbsS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(float32(math.Abs(float64(f32(v.regs[w.s])))))
	return w.nextw
}

func hNegS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(-f32(v.regs[w.s]))
	return w.nextw
}

func hSqrtS(v *VM, w *word) *word {
	v.regs[w.d] = fbits(float32(math.Sqrt(float64(f32(v.regs[w.s])))))
	return w.nextw
}

func hCvtSW(v *VM, w *word) *word {
	v.regs[w.d] = fbits(float32(v.regs[w.s]))
	return w.nextw
}

func hCvtWS(v *VM, w *word) *word {
	v.regs[w.d] = int32(f32(v.regs[w.s]))
	return w.nextw
}

func hCeqS(v *VM, w *word) *word {
	v.regs[w.d] = b2i(f32(v.regs[w.s]) == f32(v.regs[w.t]))
	return w.nextw
}

func hCltS(v *VM, w *word) *word {
	v.regs[w.d] = b2i(f32(v.regs[w.s]) < f32(v.regs[w.t]))
	return w.nextw
}

func hCleS(v *VM, w *word) *word {
	v.regs[w.d] = b2i(f32(v.regs[w.s]) <= f32(v.regs[w.t]))
	return w.nextw
}

// --- Branches and jumps ---

func hBeq(v *VM, w *word) *word {
	if v.regs[w.s] == v.regs[w.t] {
		return w.tgtw
	}
	return w.nextw
}

func hBne(v *VM, w *word) *word {
	if v.regs[w.s] != v.regs[w.t] {
		return w.tgtw
	}
	return w.nextw
}

func hBlez(v *VM, w *word) *word {
	if v.regs[w.s] <= 0 {
		return w.tgtw
	}
	return w.nextw
}

func hBgtz(v *VM, w *word) *word {
	if v.regs[w.s] > 0 {
		return w.tgtw
	}
	return w.nextw
}

func hBltz(v *VM, w *word) *word {
	if v.regs[w.s] < 0 {
		return w.tgtw
	}
	return w.nextw
}

func hBgez(v *VM, w *word) *word {
	if v.regs[w.s] >= 0 {
		return w.tgtw
	}
	return w.nextw
}

func hJ(v *VM, w *word) *word { return w.tgtw }

func hJal(v *VM, w *word) *word {
	v.regs[w.d] = w.next // link = pc+1 (instruction index)
	return w.tgtw
}

func hJr(v *VM, w *word) *word {
	t := v.regs[w.s]
	if t < 0 || t >= v.textLen {
		return v.fail(w, fmt.Errorf("branch target %d outside program", t))
	}
	return &v.code[t]
}

func hJalr(v *VM, w *word) *word {
	// The link register is written even when the target is invalid,
	// matching EvalBranch (target captured before the RA write) followed
	// by the interpreter's taken-target bounds check.
	t := v.regs[w.s]
	v.regs[w.d] = w.next
	if t < 0 || t >= v.textLen {
		return v.fail(w, fmt.Errorf("branch target %d outside program", t))
	}
	return &v.code[t]
}

// hBranchBad covers any statically-linked branch whose target lies outside
// the program: like the interpreter it only fails when the branch is
// actually taken. w.imm carries the original target.
func hBranchBad(v *VM, w *word) *word {
	in := v.text[int(w.next)-1]
	rs, rt := v.regs[w.s], v.regs[w.t]
	taken := true
	switch in.Op {
	case isa.OpBeq:
		taken = rs == rt
	case isa.OpBne:
		taken = rs != rt
	case isa.OpBlez:
		taken = rs <= 0
	case isa.OpBgtz:
		taken = rs > 0
	case isa.OpBltz:
		taken = rs < 0
	case isa.OpBgez:
		taken = rs >= 0
	case isa.OpJal:
		v.regs[w.d] = w.next
	}
	if !taken {
		return w.nextw
	}
	return v.fail(w, fmt.Errorf("branch target %d outside program", w.imm))
}

// --- Memory ---

func hLw(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if addr%4 != 0 {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "unaligned load"})
	}
	if uint64(addr)+4 > uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "load"})
	}
	v.regs[w.d] = int32(binary.LittleEndian.Uint32(v.mem[addr:]))
	return w.nextw
}

func hLb(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if uint64(addr) >= uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "load byte"})
	}
	v.regs[w.d] = int32(int8(v.mem[addr]))
	return w.nextw
}

func hLbu(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if uint64(addr) >= uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "load byte"})
	}
	v.regs[w.d] = int32(v.mem[addr])
	return w.nextw
}

func hSw(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if addr%4 != 0 {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "unaligned store"})
	}
	if uint64(addr)+4 > uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "store"})
	}
	binary.LittleEndian.PutUint32(v.mem[addr:], uint32(v.regs[w.t]))
	v.dirty(addr, 4)
	return w.nextw
}

func hSb(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if uint64(addr) >= uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "store byte"})
	}
	v.mem[addr] = byte(v.regs[w.t])
	v.dirty(addr, 1)
	return w.nextw
}

func hPref(v *VM, w *word) *word {
	// A prefetch is a hint; only the (word-aligned) address is validated.
	addr := uint32(v.regs[w.s]+w.imm) &^ 3
	if uint64(addr)+4 > uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "load"})
	}
	return w.nextw
}

func hPsm(v *VM, w *word) *word {
	addr := uint32(v.regs[w.s] + w.imm)
	if addr%4 != 0 {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "unaligned load"})
	}
	if uint64(addr)+4 > uint64(len(v.mem)) {
		return v.fail(w, &funcmodel.MemFault{Addr: addr, Op: "load"})
	}
	old := int32(binary.LittleEndian.Uint32(v.mem[addr:]))
	binary.LittleEndian.PutUint32(v.mem[addr:], uint32(old+v.regs[w.t]))
	v.dirty(addr, 4)
	v.regs[w.d] = old
	return w.nextw
}

// --- XMT extensions ---

func hPs(v *VM, w *word) *word {
	inc := v.regs[w.t]
	if inc != 0 && inc != 1 {
		return v.fail(w, fmt.Errorf("ps increment must be 0 or 1, got %d", inc))
	}
	old := v.gregs[w.g]
	v.gregs[w.g] = old + inc
	v.regs[w.d] = old
	return w.nextw
}

func hGrr(v *VM, w *word) *word {
	v.regs[w.d] = v.gregs[w.g]
	return w.nextw
}

func hGrw(v *VM, w *word) *word {
	v.gregs[w.g] = v.regs[w.t]
	return w.nextw
}

func hBcast(v *VM, w *word) *word {
	if v.inParallel {
		return v.fail(w, errBcastParallel)
	}
	v.pendingBcastMask |= 1 << uint(w.t)
	v.pendingBcast[w.t] = v.regs[w.t]
	return w.nextw
}

func hSpawn(v *VM, w *word) *word {
	if v.inParallel {
		return v.fail(w, errNestedSpawn)
	}
	low, high := v.regs[w.s], v.regs[w.t]
	v.spawnLow, v.spawnHigh = low, high
	v.savedW = w.tgtw
	v.gregs[63] = low
	if low > high {
		// Empty spawn: no virtual threads; resume after the join.
		v.pendingBcastMask = 0
		return w.tgtw
	}
	copy(v.masterRegs[:], v.regs[:32])
	v.masterPC = w.next
	for i := range v.regs[:32] {
		v.regs[i] = 0
	}
	if v.pendingBcastMask != 0 {
		for r := 0; r < 32; r++ {
			if v.pendingBcastMask&(1<<uint(r)) != 0 {
				v.regs[r] = v.pendingBcast[r]
			}
		}
	}
	v.pendingBcastMask = 0
	v.inParallel = true
	return w.nextw
}

func hSpawnBad(v *VM, w *word) *word {
	if v.inParallel {
		return v.fail(w, errNestedSpawn)
	}
	return v.fail(w, fmt.Errorf("spawn at %d has no linked region", w.imm))
}

func hJoin(v *VM, w *word) *word {
	if v.inParallel {
		return v.endSpawn()
	}
	return v.fail(w, errJoinSerial)
}

func hChkid(v *VM, w *word) *word {
	id := v.regs[w.t]
	if !v.inParallel {
		return v.fail(w, errChkidSerial)
	}
	if id > v.spawnHigh {
		// All virtual threads done (single serialized TCU): join.
		return v.endSpawn()
	}
	return w.nextw
}

// --- Sys traps (one superinstruction per trap code) ---

func hSysHalt(v *VM, w *word) *word {
	v.m.Halted = true
	v.pc = w.next
	v.reason = rHalt
	return nil
}

func hSysPrintInt(v *VM, w *word) *word {
	fmt.Fprintf(v.m.Out, "%d", v.regs[2])
	return w.nextw
}

func hSysPrintChar(v *VM, w *word) *word {
	fmt.Fprintf(v.m.Out, "%c", rune(v.regs[2]))
	return w.nextw
}

func hSysPrintStr(v *VM, w *word) *word {
	s, err := v.m.StringAt(uint32(v.regs[2]))
	if err != nil {
		return v.fail(w, err)
	}
	fmt.Fprint(v.m.Out, s)
	return w.nextw
}

func hSysCycle(v *VM, w *word) *word {
	// The default CycleFn reads Machine.InstrCount, and the dispatch loop
	// keeps the live count in a register: stop the burst so the loop's
	// stop-path accounting settles v.icount (including this instruction)
	// before Run/RunTo service the read and resume.
	v.pc = w.next
	v.reason = rCycle
	return nil
}

func hSysCheckpoint(v *VM, w *word) *word {
	v.m.CheckpointRequested = true
	v.pc = w.next
	v.reason = rCheckpoint
	return nil
}

func hSysPrintFloat(v *VM, w *word) *word {
	fmt.Fprintf(v.m.Out, "%g", f32(v.regs[2]))
	return w.nextw
}

func hSysBad(v *VM, w *word) *word {
	return v.fail(w, fmt.Errorf("unknown sys code %d", w.imm))
}

// hBadOp matches the interpreter's default path, where a non-executable
// opcode falls through to ExecCompute and is rejected there.
func hBadOp(v *VM, w *word) *word {
	in := v.text[int(w.next)-1]
	return v.fail(w, fmt.Errorf("ExecCompute: %s is not a compute instruction", in.Op))
}

// hOutside is the fall-off sentinel at code[len(text)]: sequential flow
// past the last instruction is a fetch error, not an executed instruction
// (the rOutside reason makes the dispatch loop's stop-path accounting
// subtract it from the count).
func hOutside(v *VM, w *word) *word {
	id := -1
	if v.inParallel {
		id = 0
	}
	v.pc = v.textLen
	v.err = fmt.Errorf("funcvm: PC %d outside program (context %d)", v.textLen, id)
	v.reason = rOutside
	return nil
}
