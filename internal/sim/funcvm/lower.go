package funcvm

import (
	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
)

// backendName keys the lowered form in asm.Program's lowering cache.
const backendName = "funcvm"

// zeroSink is the register-file slot that absorbs writes to $zero. Read
// slots are always the architectural register number (0..31); write slots
// are the register number except $zero, which maps here so handlers never
// branch on the destination.
const zeroSink = 32

// regSlots sizes the VM register file so a uint8 slot index can never be
// out of range, eliminating bounds checks on every register access.
const regSlots = 256

// word is one lowered instruction: a handler plus fully pre-resolved
// operands. The dispatch loop calls run and continues at the returned
// word; a nil return stops dispatch (halt, error, checkpoint pause).
// Control flow is threaded as direct pointers — nextw and tgtw point at
// the successor words — so the hot loop never indexes the word stream
// (only jr/jalr, whose targets are dynamic, pay an indexed lookup).
type word struct {
	run func(*VM, *word) *word

	nextw *word // fallthrough successor (sentinel: nil)
	tgtw  *word // resolved branch target / post-join word for spawn

	d uint8 // write slot (zeroSink when the op writes $zero or nothing)
	s uint8 // read slot of Rs
	t uint8 // read slot of Rt, or of Rd for ops that read Rd
	g uint8 // global register index, pre-masked to 0..63

	imm  int32 // folded immediate (masked/shifted at lowering)
	tgt  int32 // resolved branch target / post-join pc for spawn
	next int32 // own index + 1: fallthrough pc, jal link value
}

// Code is the immutable lowered form of one program: a flat word stream
// with a trailing fall-off sentinel, shareable by any number of VMs.
type Code struct {
	words []word
	text  []isa.Instr // the source instructions, for traces and errors
}

// Len returns the number of program instructions (excluding the sentinel).
func (c *Code) Len() int { return len(c.text) }

// NewCode returns the lowered form of p, reusing the program's cached
// lowering when one exists so batch drivers and benchmarks pay the
// compilation cost once per program.
func NewCode(p *asm.Program) *Code {
	if v, ok := p.CachedLowered(backendName); ok {
		if c, ok := v.(*Code); ok {
			return c
		}
	}
	c := lower(p)
	p.StoreLowered(backendName, c)
	return c
}

// wslot maps a destination register to its write slot.
func wslot(r isa.Reg) uint8 {
	if r == isa.RegZero {
		return zeroSink
	}
	return uint8(r)
}

// lower compiles the assembled program into the flat word stream. All
// decode decisions move here: register numbers become file slots,
// immediates are folded (andi/ori/xori masked, lui pre-shifted, shift
// amounts clamped), branch targets become absolute pc values, and
// spawn/ps/psm/sys become dedicated superinstruction handlers.
func lower(p *asm.Program) *Code {
	n := len(p.Text)
	words := make([]word, n+1)
	for i := 0; i < n; i++ {
		in := p.Text[i]
		w := &words[i]
		w.next = int32(i) + 1
		w.d = wslot(in.Rd)
		w.s = uint8(in.Rs)
		w.t = uint8(in.Rt)
		w.g = uint8(in.G) & 63
		w.imm = in.Imm

		switch in.Op {
		case isa.OpNop, isa.OpFence:
			// fence is a functional no-op: this backend, like the
			// interpreter, has no pending memory operations.
			w.run = hNop

		// Integer ALU.
		case isa.OpAdd, isa.OpAddu:
			w.run = hAdd
		case isa.OpSub, isa.OpSubu:
			w.run = hSub
		case isa.OpAnd:
			w.run = hAnd
		case isa.OpOr:
			w.run = hOr
		case isa.OpXor:
			w.run = hXor
		case isa.OpNor:
			w.run = hNor
		case isa.OpSlt:
			w.run = hSlt
		case isa.OpSltu:
			w.run = hSltu
		case isa.OpAddi, isa.OpAddiu:
			w.run = hAddi
		case isa.OpAndi:
			w.run = hAndi
			w.imm = in.Imm & 0xffff
		case isa.OpOri:
			w.run = hOri
			w.imm = in.Imm & 0xffff
		case isa.OpXori:
			w.run = hXori
			w.imm = in.Imm & 0xffff
		case isa.OpSlti:
			w.run = hSlti
		case isa.OpSltiu:
			w.run = hSltiu
		case isa.OpLui:
			w.run = hLui
			w.imm = in.Imm << 16

		// Shifts.
		case isa.OpSll:
			w.run = hSll
			w.imm = in.Imm & 31
		case isa.OpSrl:
			w.run = hSrl
			w.imm = in.Imm & 31
		case isa.OpSra:
			w.run = hSra
			w.imm = in.Imm & 31
		case isa.OpSllv:
			w.run = hSllv
		case isa.OpSrlv:
			w.run = hSrlv
		case isa.OpSrav:
			w.run = hSrav

		// Multiply/divide.
		case isa.OpMul:
			w.run = hMul
		case isa.OpMulu:
			w.run = hMulu
		case isa.OpDiv:
			w.run = hDiv
		case isa.OpDivu:
			w.run = hDivu
		case isa.OpRem:
			w.run = hRem
		case isa.OpRemu:
			w.run = hRemu

		// Floating point.
		case isa.OpAddS:
			w.run = hAddS
		case isa.OpSubS:
			w.run = hSubS
		case isa.OpMulS:
			w.run = hMulS
		case isa.OpDivS:
			w.run = hDivS
		case isa.OpAbsS:
			w.run = hAbsS
		case isa.OpNegS:
			w.run = hNegS
		case isa.OpSqrtS:
			w.run = hSqrtS
		case isa.OpCvtSW:
			w.run = hCvtSW
		case isa.OpCvtWS:
			w.run = hCvtWS
		case isa.OpCeqS:
			w.run = hCeqS
		case isa.OpCltS:
			w.run = hCltS
		case isa.OpCleS:
			w.run = hCleS

		// Branches and jumps. Static targets are resolved below.
		case isa.OpBeq:
			w.run = hBeq
		case isa.OpBne:
			w.run = hBne
		case isa.OpBlez:
			w.run = hBlez
		case isa.OpBgtz:
			w.run = hBgtz
		case isa.OpBltz:
			w.run = hBltz
		case isa.OpBgez:
			w.run = hBgez
		case isa.OpJ:
			w.run = hJ
		case isa.OpJal:
			w.run = hJal
			w.d = uint8(isa.RegRA)
		case isa.OpJr:
			w.run = hJr
		case isa.OpJalr:
			w.run = hJalr
			w.d = uint8(isa.RegRA)

		// Memory.
		case isa.OpLw, isa.OpLwRO:
			w.run = hLw
		case isa.OpLb:
			w.run = hLb
		case isa.OpLbu:
			w.run = hLbu
		case isa.OpSw, isa.OpSwNB:
			w.run = hSw
			w.t = uint8(in.Rd) // store data register
		case isa.OpSb:
			w.run = hSb
			w.t = uint8(in.Rd)
		case isa.OpPref:
			w.run = hPref

		// XMT extensions.
		case isa.OpSpawn:
			region := p.RegionOf(i + 1)
			if region == nil || region.Spawn != i {
				w.run = hSpawnBad
				w.imm = int32(i)
			} else {
				w.run = hSpawn
				w.tgt = int32(region.Join) + 1
			}
		case isa.OpJoin:
			w.run = hJoin
		case isa.OpChkid:
			w.run = hChkid
			w.t = uint8(in.Rd)
		case isa.OpPs:
			w.run = hPs
			w.t = uint8(in.Rd) // ps reads Rd as the increment
		case isa.OpPsm:
			w.run = hPsm
			w.t = uint8(in.Rd)
		case isa.OpGrr:
			w.run = hGrr
		case isa.OpGrw:
			w.run = hGrw
			w.t = uint8(in.Rd)
		case isa.OpBcast:
			w.run = hBcast
			w.t = uint8(in.Rd)

		case isa.OpSys:
			switch in.Imm {
			case isa.SysHalt:
				w.run = hSysHalt
			case isa.SysPrintInt:
				w.run = hSysPrintInt
			case isa.SysPrintChar:
				w.run = hSysPrintChar
			case isa.SysPrintStr:
				w.run = hSysPrintStr
			case isa.SysCycle:
				w.run = hSysCycle
			case isa.SysCheckpoint:
				w.run = hSysCheckpoint
			case isa.SysPrintFloat:
				w.run = hSysPrintFloat
			default:
				w.run = hSysBad
			}

		default:
			w.run = hBadOp
		}

		// A static branch whose linked target is outside the program must
		// fail only when taken, exactly like the interpreter; stash the
		// original target for the error message.
		if in.Op.IsBranch() && in.Op != isa.OpJr && in.Op != isa.OpJalr {
			if in.Target < 0 || in.Target >= n {
				w.run = hBranchBad
				w.imm = int32(in.Target)
				w.tgt = 0
			} else {
				w.tgt = int32(in.Target)
			}
		}
	}
	// Fall-off sentinel: reached only by sequential flow past the last
	// instruction (all taken branch targets are validated).
	words[n] = word{run: hOutside, next: int32(n) + 1}
	// Thread the control flow as direct pointers. Every tgt is a validated
	// index in [0, n] by this point (branch targets < n, spawn's join+1
	// <= n), so tgtw is always in-slice; words whose handlers never jump
	// just carry a harmless pointer to words[0].
	for i := 0; i < n; i++ {
		words[i].nextw = &words[i+1]
		words[i].tgtw = &words[words[i].tgt]
	}
	return &Code{words: words, text: p.Text}
}
