package metrics

import (
	"os"
	"strings"

	"xmtgo/internal/sim/stats"
)

// ExportSamples writes the sampler's time series to path, choosing the
// format by extension: ".csv" writes the fixed-column CSV, anything else
// writes the JSONL stream (header line + one object per sample).
func ExportSamples(path string, sp *Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = WriteCSV(f, sp.Samples())
	} else {
		err = WriteJSONL(f, sp.Header(), sp.Samples())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ExportCounters writes the collector's machine-readable snapshot
// (schema stats.SnapshotSchema) to path.
func ExportCounters(path string, st *stats.Collector, cycle, ticks int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = st.Snapshot(cycle, ticks).WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
