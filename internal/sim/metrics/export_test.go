package metrics_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmtgo/internal/sim/metrics"
)

func TestExportSamplesAndCounters(t *testing.T) {
	smp, sys, res := runSampled(t, 200, 1, false)
	dir := t.TempDir()

	jl := filepath.Join(dir, "s.jsonl")
	if err := metrics.ExportSamples(jl, smp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":"xmt-samples/v1"`) {
		t.Fatalf("JSONL export missing header:\n%s", data)
	}

	cs := filepath.Join(dir, "s.csv")
	if err := metrics.ExportSamples(cs, smp); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(cs); err != nil || !strings.HasPrefix(string(data), "cycle,") {
		t.Fatalf("CSV export: err=%v\n%s", err, data)
	}

	cj := filepath.Join(dir, "c.json")
	if err := metrics.ExportCounters(cj, sys.Stats, res.Cycles, int64(res.Ticks)); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(cj); err != nil || !strings.Contains(string(data), `"schema": "xmt-counters/v1"`) {
		t.Fatalf("counters export: err=%v\n%s", err, data)
	}

	if err := metrics.ExportSamples(filepath.Join(dir, "missing", "x.jsonl"), smp); err == nil {
		t.Error("export into a missing directory should fail")
	}
	if err := metrics.ExportCounters(filepath.Join(dir, "missing", "x.json"), sys.Stats, 1, 8); err == nil {
		t.Error("counters export into a missing directory should fail")
	}
}

func TestSamplerPluginIdentity(t *testing.T) {
	smp, _, _ := runSampled(t, 200, 1, false)
	if got := smp.Name(); got != "interval-sampler" {
		t.Errorf("plugin name %q", got)
	}
	if got := smp.IntervalCycles(); got != 200 {
		t.Errorf("plugin interval %d", got)
	}
}
