package metrics

import (
	"fmt"
	"io"
	"sort"
)

// RenderProm writes the bundle in Prometheus text exposition format
// (version 0.0.4). It is a pure function of the bundle — families appear in
// a fixed order and label values are emitted sorted — so the output is
// byte-deterministic and can be golden-tested.
func RenderProm(w io.Writer, p *Published) {
	g := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	st := &p.Status
	g("xmt_cycle", "Current cluster cycle (includes checkpoint-resume offset).", st.Cycle)
	g("xmt_ticks", "Current engine time in ticks.", st.Ticks)
	g("xmt_done", "1 when the run has finished.", b2i(st.Done))
	g("xmt_tcus_alive", "TCUs currently live (not decommissioned).", st.AliveTCUs)
	c("xmt_tcus_decommissioned_total", "TCUs decommissioned by fault handling.", st.DecommissionedTCUs)
	if st.WatchdogCycles > 0 {
		g("xmt_watchdog_slack_cycles", "Estimated cycles of watchdog budget remaining.", st.WatchdogSlack)
	}
	c("xmt_trace_dropped_total", "Sim trace-ring events evicted before draining.", st.TraceDropped)

	cs := p.Counters
	if cs != nil {
		name := "xmt_instructions_total"
		fmt.Fprintf(w, "# HELP %s Committed instructions by processor kind.\n# TYPE %s counter\n", name, name)
		fmt.Fprintf(w, "%s{kind=\"master\"} %d\n", name, cs.Instructions.Master)
		fmt.Fprintf(w, "%s{kind=\"tcu\"} %d\n", name, cs.Instructions.TCU)

		name = "xmt_stall_cycles_total"
		fmt.Fprintf(w, "# HELP %s Aggregate TCU stall cycles by cause.\n# TYPE %s counter\n", name, name)
		fmt.Fprintf(w, "%s{cause=\"mem\"} %d\n", name, cs.Stalls.Mem)
		fmt.Fprintf(w, "%s{cause=\"fpu_mdu\"} %d\n", name, cs.Stalls.FPUMDU)
		fmt.Fprintf(w, "%s{cause=\"ps\"} %d\n", name, cs.Stalls.PS)
		fmt.Fprintf(w, "%s{cause=\"icn_send\"} %d\n", name, cs.Stalls.ICNSend)

		c("xmt_cache_hits_total", "Shared-cache hits.", cs.Memory.CacheHits)
		c("xmt_cache_misses_total", "Shared-cache misses.", cs.Memory.CacheMisses)
		c("xmt_cache_queue_full_total", "Cache request-queue-full events.", cs.Memory.QueueFull)
		c("xmt_dram_accesses_total", "DRAM accesses.", cs.Memory.DRAMTotal)
		c("xmt_icn_traversals_total", "Interconnect packet traversals.", cs.Memory.ICNTraversals)
		c("xmt_icn_hops_total", "Interconnect hop count.", cs.Memory.ICNHops)
		c("xmt_ps_ops_total", "Prefix-sum operations.", cs.PrefixSum.Ops)
		c("xmt_spawns_total", "Spawn instructions executed.", cs.SpawnJoin.Spawns)
		c("xmt_virtual_threads_total", "Virtual threads launched.", cs.SpawnJoin.VirtualThreads)
		c("xmt_redispatches_total", "Threads re-dispatched after TCU failure.", cs.Faults.Redispatches)

		name = "xmt_faults_injected_total"
		fmt.Fprintf(w, "# HELP %s Faults injected by kind.\n# TYPE %s counter\n", name, name)
		kinds := map[string]uint64{
			"mem": cs.Faults.Mem, "reg": cs.Faults.Reg,
			"icn_delay": cs.Faults.ICNDelay, "icn_dup": cs.Faults.ICNDup,
			"icn_drop": cs.Faults.ICNDrop, "cache_stall": cs.Faults.CacheStall,
			"tcu_fail": cs.Faults.TCUFail, "cluster_fail": cs.Faults.ClusterFail,
		}
		keys := make([]string, 0, len(kinds))
		for k := range kinds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, kinds[k])
		}
	}

	s := p.Sample
	if s != nil {
		g("xmt_interval_ipc", "Instructions per cluster cycle in the last sample window.", fl(s.IPC))
		g("xmt_interval_cache_hit_rate", "Cache hit rate in the last sample window.", fl(s.CacheHitRate))
		g("xmt_interval_window_cycles", "Width of the last sample window in cluster cycles.", s.WindowCycles)
		if s.Power != nil {
			g("xmt_power_watts", "Mean power over the last sample window.", fl(s.Power.Watts))
			g("xmt_energy_joules", "Energy consumed in the last sample window.", fl(s.Power.EnergyJ))
			g("xmt_temp_peak_celsius", "Peak thermal-grid cell temperature.", fl(s.Power.PeakTempC))
			g("xmt_temp_mean_celsius", "Mean thermal-grid cell temperature.", fl(s.Power.MeanTempC))
			g("xmt_thermal_throttled", "1 while the DVFS controller is throttling.", b2i(s.Power.Throttled))
		}
	}

	if bt := st.Batch; bt != nil {
		g("xmt_batch_jobs_total", "Jobs in the batch campaign.", bt.JobsTotal)
		g("xmt_batch_jobs_done", "Jobs completed successfully.", bt.JobsDone)
		g("xmt_batch_jobs_failed", "Jobs that exhausted their retry budget.", bt.JobsFailed)
		g("xmt_batch_resumes_total", "Checkpoint resumes performed across the campaign.", bt.Resumes)
	}

	if dm := st.Daemon; dm != nil {
		g("xmt_daemon_queue_depth", "Jobs in the daemon's ready queue.", dm.QueueDepth)
		g("xmt_daemon_running", "Jobs currently simulating.", dm.Running)
		g("xmt_daemon_workers", "Configured worker count.", dm.Workers)
		g("xmt_daemon_draining", "1 while a graceful drain is in progress.", b2i(dm.Draining))
		c("xmt_daemon_preemptions_total", "Checkpoint-boundary preemptions.", dm.Preemptions)
		c("xmt_daemon_retries_total", "Attempt retries after timeout or watchdog trip.", dm.Retries)
		c("xmt_daemon_recoveries_total", "Jobs recovered by journal replay.", dm.Recoveries)
		c("xmt_daemon_completed_total", "Jobs finished successfully.", dm.Completed)
		c("xmt_daemon_failed_total", "Jobs that reached a failure state.", dm.Failed)
		c("xmt_daemon_canceled_total", "Jobs canceled by clients.", dm.Canceled)
		c("xmt_daemon_trace_spans_dropped_total", "Lifecycle spans evicted from the daemon trace ring.", dm.TraceDropped)
		c("xmt_daemon_log_dropped_total", "Structured log records evicted from the /logs ring.", dm.LogDropped)
		if len(dm.Tenants) > 0 {
			name := "xmt_daemon_tenant_jobs"
			fmt.Fprintf(w, "# HELP %s Per-tenant queue and worker occupancy.\n# TYPE %s gauge\n", name, name)
			tenants := make([]string, 0, len(dm.Tenants))
			for t := range dm.Tenants {
				tenants = append(tenants, t)
			}
			sort.Strings(tenants)
			for _, t := range tenants {
				occ := dm.Tenants[t]
				fmt.Fprintf(w, "%s{tenant=%q,state=\"queued\"} %d\n", name, t, occ.Queued)
				fmt.Fprintf(w, "%s{tenant=%q,state=\"running\"} %d\n", name, t, occ.Running)
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fl renders a float like strconv.FormatFloat(v, 'g', -1, 64), matching the
// JSON encoding so goldens agree across surfaces.
func fl(v float64) string { return fmt.Sprintf("%g", v) }
