// Package metrics implements XMTSim's time-resolved telemetry: a
// deterministic interval sampler that snapshots the activity counters every
// N cluster cycles at an outbox-commit boundary (producing a time series of
// windowed deltas), and a live metrics server that exposes the latest
// immutable snapshot over HTTP while the simulation runs
// (docs/OBSERVABILITY.md, "Time-resolved telemetry & live monitoring").
//
// Determinism contract: every number in a sample derives from the
// stats.Collector — which is bit-identical for any host worker count — read
// on the scheduler goroutine after all outbox commits of the sample tick.
// The JSONL and CSV artifacts therefore compare equal byte-for-byte across
// `host_workers` values, like every other observability surface.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// SampleSchema versions the interval-sample stream (the JSONL header line
// and the CSV column set). Bump on rename/removal; additions are free.
const SampleSchema = "xmt-samples/v1"

// Header is the first JSONL line of a sample stream: it identifies the
// schema and the machine shape the samples describe.
type Header struct {
	Schema   string `json:"schema"`
	Config   string `json:"config"`
	Clusters int    `json:"clusters"`
	TCUs     int    `json:"tcus"`
	Interval int64  `json:"interval_cycles"`
}

// Sample is one interval of the time series: windowed deltas of the
// activity counters between two sampling boundaries, plus instantaneous
// machine state (live TCUs, thermal state). The final sample of a run may
// cover a partial window (WindowCycles < the configured interval).
type Sample struct {
	Cycle        int64 `json:"cycle"` // end-of-window cluster cycle (absolute, incl. resume offset)
	Ticks        int64 `json:"ticks"` // end-of-window engine time
	WindowCycles int64 `json:"window_cycles"`

	Instrs       uint64  `json:"instrs"`
	MasterInstrs uint64  `json:"master_instrs"`
	TCUInstrs    uint64  `json:"tcu_instrs"`
	IPC          float64 `json:"ipc"` // committed instructions per cluster cycle in the window

	StallMem     uint64 `json:"stall_mem"`
	StallFPUMDU  uint64 `json:"stall_fpu_mdu"`
	StallPS      uint64 `json:"stall_ps"`
	StallICNSend uint64 `json:"stall_icn_send"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"` // hits / (hits+misses) in the window
	CacheQueueFull uint64  `json:"cache_queue_full"`
	QueueDepthMean float64 `json:"cache_queue_depth_mean"` // mean service-queue depth per serving tick

	ICNTraversals uint64 `json:"icn_traversals"`
	ICNHops       uint64 `json:"icn_hops"`
	DRAMAccesses  uint64 `json:"dram_accesses"`

	PsOps           uint64  `json:"ps_ops"`
	PsLatencyMean   float64 `json:"ps_latency_mean"`   // ticks, over ps responses in the window
	LoadLatencyMean float64 `json:"load_latency_mean"` // ticks, over loads in the window

	Spawns         uint64 `json:"spawns"`
	VirtualThreads uint64 `json:"virtual_threads"`

	AliveTCUs          int    `json:"alive_tcus"`
	DecommissionedTCUs uint64 `json:"decommissioned_tcus"`
	FaultsInjected     uint64 `json:"faults_injected"`
	Redispatches       uint64 `json:"redispatches"`

	// Power is present only when the power/thermal plug-in is attached
	// (xmtsim -thermal): per-interval energy and the thermal grid state.
	Power *PowerSample `json:"power,omitempty"`
}

// PowerSample is the per-interval power/thermal state.
type PowerSample struct {
	EnergyJ   float64 `json:"energy_j"` // energy consumed in the window
	Watts     float64 `json:"watts"`    // mean power over the window
	PeakTempC float64 `json:"peak_temp_c"`
	MeanTempC float64 `json:"mean_temp_c"`
	Throttled bool    `json:"throttled"`
}

// csvColumns is the fixed CSV column set (schema SampleSchema). Power
// columns are always present; they read 0 when no thermal plug-in is
// attached so the column set does not depend on flags.
var csvColumns = []string{
	"cycle", "ticks", "window_cycles",
	"instrs", "master_instrs", "tcu_instrs", "ipc",
	"stall_mem", "stall_fpu_mdu", "stall_ps", "stall_icn_send",
	"cache_hits", "cache_misses", "cache_hit_rate", "cache_queue_full", "cache_queue_depth_mean",
	"icn_traversals", "icn_hops", "dram_accesses",
	"ps_ops", "ps_latency_mean", "load_latency_mean",
	"spawns", "virtual_threads",
	"alive_tcus", "decommissioned_tcus", "faults_injected", "redispatches",
	"energy_j", "watts", "peak_temp_c", "mean_temp_c", "throttled",
}

func (s *Sample) csvRecord() []string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var pw PowerSample
	if s.Power != nil {
		pw = *s.Power
	}
	throttled := "0"
	if pw.Throttled {
		throttled = "1"
	}
	return []string{
		i(s.Cycle), i(s.Ticks), i(s.WindowCycles),
		u(s.Instrs), u(s.MasterInstrs), u(s.TCUInstrs), f(s.IPC),
		u(s.StallMem), u(s.StallFPUMDU), u(s.StallPS), u(s.StallICNSend),
		u(s.CacheHits), u(s.CacheMisses), f(s.CacheHitRate), u(s.CacheQueueFull), f(s.QueueDepthMean),
		u(s.ICNTraversals), u(s.ICNHops), u(s.DRAMAccesses),
		u(s.PsOps), f(s.PsLatencyMean), f(s.LoadLatencyMean),
		u(s.Spawns), u(s.VirtualThreads),
		strconv.Itoa(s.AliveTCUs), u(s.DecommissionedTCUs), u(s.FaultsInjected), u(s.Redispatches),
		f(pw.EnergyJ), f(pw.Watts), f(pw.PeakTempC), f(pw.MeanTempC), throttled,
	}
}

// WriteJSONL writes the header line followed by one compact JSON object per
// sample. The output is byte-deterministic.
func WriteJSONL(w io.Writer, hdr Header, samples []Sample) error {
	enc := json.NewEncoder(w)
	hdr.Schema = SampleSchema
	if err := enc.Encode(&hdr); err != nil {
		return err
	}
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the samples as CSV with a fixed header row.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvColumns); err != nil {
		return err
	}
	for i := range samples {
		if err := cw.Write(samples[i].csvRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ratio returns num/den, 0 when den is 0 — the stable "rate over a window"
// helper (plain float64 division on deterministic integers, so the result
// is bit-identical everywhere).
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func ratioI(num uint64, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
