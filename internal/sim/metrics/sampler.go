package metrics

import (
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/power"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

// Sampler is the deterministic interval sampler: an activity plug-in
// (paper §III-B / Fig. 3) that reads the counters every Interval cluster
// cycles — at a point where every outbox of the sample tick has committed,
// so the collector is exactly the serial simulator's state — and appends one
// windowed-delta Sample per interval. It never writes simulator state, so
// attaching it cannot perturb results.
type Sampler struct {
	cfg      *config.Config
	interval int64

	samples []Sample

	// prev holds the cumulative counter values at the previous boundary.
	prev prevState

	lastCycle int64 // cycle of the last emitted boundary
	lastTicks int64

	// lastProgressCycle is the most recent boundary at which the window
	// retired at least one instruction — the basis for the /status
	// watchdog-slack estimate (sample-interval granularity).
	lastProgressCycle int64

	tm *power.ThermalManager // non-nil when the thermal plug-in is attached
	pm *power.Model          // sampler-private power model (own delta state)

	srv *Server // non-nil when publishing to a live metrics server
	job string  // daemon job id stamped on published bundles (may be empty)

	// evlog, when set, reads the run's structured trace log so /status and
	// /metrics can surface its dropped-event count (satellite of the
	// service-observability work: silent ring truncation must be scrapable).
	evlog func() *trace.EventLog
}

type prevState struct {
	masterInstrs, tcuInstrs                uint64
	stallMem, stallFPU, stallPS, stallSend uint64
	cacheHits, cacheMisses, queueFull      uint64
	qDepthCount, qDepthSum                 uint64
	icnTraversals, icnHops, dram           uint64
	psOps, psLatCount, psLatSum            uint64
	loadLatCount, loadLatSum               uint64
	spawns, vthreads, faults, redispatches uint64
}

// NewSampler creates a sampler for one run. startCycle is the cycle the
// system starts counting from (System.StartCycle — non-zero after a
// checkpoint resume). interval <= 0 disables sampling.
func NewSampler(cfg *config.Config, interval, startCycle int64) *Sampler {
	return &Sampler{
		cfg:               cfg,
		interval:          interval,
		lastCycle:         startCycle,
		lastProgressCycle: startCycle,
	}
}

// Attach builds a sampler and registers it on sys. Call after RestoreState
// so the resume offset is reflected in sample cycles. Returns nil when
// interval <= 0.
func Attach(sys *cycle.System, interval int64) *Sampler {
	if interval <= 0 {
		return nil
	}
	sp := NewSampler(sys.Cfg, interval, sys.StartCycle())
	sp.evlog = sys.EventLog
	sys.AddActivityPlugin(sp)
	return sp
}

// AttachThermal connects the power/thermal plug-in: subsequent samples
// carry per-interval energy and the thermal grid's peak/mean temperature.
// The sampler uses its own power.Model instance, so its energy accounting
// never interferes with the manager's DVFS decisions.
func (sp *Sampler) AttachThermal(tm *power.ThermalManager) {
	sp.tm = tm
	sp.pm = power.New(sp.cfg)
}

// SetServer publishes every interval boundary to a live metrics server.
func (sp *Sampler) SetServer(srv *Server) { sp.srv = srv }

// SetJob labels published bundles with a daemon job id so /stream?job=ID
// subscribers receive only this run's samples.
func (sp *Sampler) SetJob(id string) { sp.job = id }

// Samples returns the recorded time series.
func (sp *Sampler) Samples() []Sample { return sp.samples }

// Header describes the sample stream for the JSONL/CSV exporters.
func (sp *Sampler) Header() Header {
	return Header{
		Schema:   SampleSchema,
		Config:   sp.cfg.Name,
		Clusters: sp.cfg.Clusters,
		TCUs:     sp.cfg.TCUs(),
		Interval: sp.interval,
	}
}

// Name implements cycle.ActivityPlugin.
func (sp *Sampler) Name() string { return "interval-sampler" }

// IntervalCycles implements cycle.ActivityPlugin.
func (sp *Sampler) IntervalCycles() int64 { return sp.interval }

// Sample implements cycle.ActivityPlugin: one boundary every Interval
// cluster cycles, on the scheduler goroutine, after all commits at this
// timestamp.
func (sp *Sampler) Sample(snap *cycle.Snapshot, ctl *cycle.Control) {
	sp.boundary(snap.Cycle, snap.Now, snap.Stats, snap.AliveTCUs, false)
}

// Finalize records the final (possibly partial) window after the run ends.
// Drivers call it with Result.Cycles/Ticks before exporting. A run that
// ends exactly on a boundary adds nothing.
func (sp *Sampler) Finalize(cyc, ticks int64, st *stats.Collector, aliveTCUs int) {
	sp.boundary(cyc, ticks, st, aliveTCUs, true)
}

func (sp *Sampler) boundary(cyc, ticks int64, st *stats.Collector, aliveTCUs int, final bool) {
	if final && cyc <= sp.lastCycle && len(sp.samples) > 0 {
		// The run ended on the last boundary; nothing new to record. (The
		// publish below still runs so /status shows the final state.)
		if sp.srv != nil {
			sp.publish(&sp.samples[len(sp.samples)-1], cyc, ticks, st, aliveTCUs, final)
		}
		return
	}

	var cur prevState
	cur.masterInstrs, cur.tcuInstrs = st.MasterInstrs, st.TCUInstrs
	for i := range st.Cluster {
		cs := &st.Cluster[i]
		cur.stallMem += cs.MemWaitCycles
		cur.stallFPU += cs.FPUWaitCycles
		cur.stallPS += cs.PSWaitCycles
		cur.stallSend += cs.SendStallCycles
	}
	cur.cacheHits, cur.cacheMisses = st.TotalCacheHits()
	for _, n := range st.CacheQueueFull {
		cur.queueFull += n
	}
	cur.qDepthCount, cur.qDepthSum = st.CacheQueueDepth.Count, st.CacheQueueDepth.Sum
	cur.icnTraversals, cur.icnHops = st.ICNTraversals, st.ICNHops
	for _, d := range st.DRAMAccesses {
		cur.dram += d
	}
	cur.psOps = st.PsOps
	cur.psLatCount, cur.psLatSum = st.PSLatency.Count, st.PSLatency.Sum
	cur.loadLatCount, cur.loadLatSum = st.LoadLatency.Count, st.LoadLatency.Sum
	cur.spawns, cur.vthreads = st.SpawnCount, st.VirtualThreads
	cur.faults, cur.redispatches = st.FaultsInjected(), st.Redispatches

	p := &sp.prev
	window := cyc - sp.lastCycle
	s := Sample{
		Cycle: cyc, Ticks: ticks, WindowCycles: window,
		Instrs:       (cur.masterInstrs - p.masterInstrs) + (cur.tcuInstrs - p.tcuInstrs),
		MasterInstrs: cur.masterInstrs - p.masterInstrs,
		TCUInstrs:    cur.tcuInstrs - p.tcuInstrs,

		StallMem:     cur.stallMem - p.stallMem,
		StallFPUMDU:  cur.stallFPU - p.stallFPU,
		StallPS:      cur.stallPS - p.stallPS,
		StallICNSend: cur.stallSend - p.stallSend,

		CacheHits:      cur.cacheHits - p.cacheHits,
		CacheMisses:    cur.cacheMisses - p.cacheMisses,
		CacheQueueFull: cur.queueFull - p.queueFull,

		ICNTraversals: cur.icnTraversals - p.icnTraversals,
		ICNHops:       cur.icnHops - p.icnHops,
		DRAMAccesses:  cur.dram - p.dram,

		PsOps: cur.psOps - p.psOps,

		Spawns:         cur.spawns - p.spawns,
		VirtualThreads: cur.vthreads - p.vthreads,

		AliveTCUs:          aliveTCUs,
		DecommissionedTCUs: st.TCUsDecommissioned,
		FaultsInjected:     cur.faults - p.faults,
		Redispatches:       cur.redispatches - p.redispatches,
	}
	s.IPC = ratioI(s.Instrs, window)
	s.CacheHitRate = ratio(s.CacheHits, s.CacheHits+s.CacheMisses)
	s.QueueDepthMean = ratio(cur.qDepthSum-p.qDepthSum, cur.qDepthCount-p.qDepthCount)
	s.PsLatencyMean = ratio(cur.psLatSum-p.psLatSum, cur.psLatCount-p.psLatCount)
	s.LoadLatencyMean = ratio(cur.loadLatSum-p.loadLatSum, cur.loadLatCount-p.loadLatCount)

	if sp.tm != nil {
		ps := sp.pm.Sample(st, ticks-sp.lastTicks)
		grid := sp.tm.Grid()
		s.Power = &PowerSample{
			EnergyJ:   ps.Total * ps.WindowSeconds,
			Watts:     ps.Total,
			PeakTempC: grid.Max(),
			MeanTempC: grid.Mean(),
			Throttled: sp.tm.Throttled(),
		}
	}

	if s.Instrs > 0 {
		sp.lastProgressCycle = cyc
	}
	sp.prev = cur
	sp.lastCycle, sp.lastTicks = cyc, ticks
	sp.samples = append(sp.samples, s)

	if sp.srv != nil {
		sp.publish(&sp.samples[len(sp.samples)-1], cyc, ticks, st, aliveTCUs, final)
	}
}

// publish hands the server an immutable bundle: the interval sample (by
// value), a freshly built counter snapshot, and the status block. The
// server only ever reads these, so the HTTP goroutines never touch live
// simulator state.
func (sp *Sampler) publish(s *Sample, cyc, ticks int64, st *stats.Collector, aliveTCUs int, done bool) {
	smp := *s
	status := Status{
		Cycle:              cyc,
		Ticks:              ticks,
		Instrs:             st.TotalInstrs(),
		AliveTCUs:          aliveTCUs,
		DecommissionedTCUs: st.TCUsDecommissioned,
		FaultsInjected:     st.FaultsInjected(),
		WatchdogCycles:     sp.cfg.WatchdogCycles,
		Done:               done,
	}
	if sp.cfg.WatchdogCycles > 0 {
		status.WatchdogSlack = sp.cfg.WatchdogCycles - (cyc - sp.lastProgressCycle)
	}
	if sp.evlog != nil {
		if l := sp.evlog(); l != nil {
			status.TraceDropped = l.Dropped
		}
	}
	sp.srv.Publish(&Published{
		Status:   status,
		Counters: st.Snapshot(cyc, ticks),
		Sample:   &smp,
		Job:      sp.job,
	})
}
