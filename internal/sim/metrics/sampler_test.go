package metrics_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/power"
)

// loopAsm is a serial load-modify-store loop long enough for several
// sampling windows.
const loopAsm = `
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, 300
        la    $t1, A
Lloop:  lw    $t2, 0($t1)
        addiu $t2, $t2, 1
        sw    $t2, 0($t1)
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        sys   0
`

func mustProgram(t testing.TB, src string) *asm.Program {
	t.Helper()
	u, err := asm.Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func runSampled(t *testing.T, interval int64, workers int, thermal bool) (*metrics.Sampler, *cycle.System, *cycle.Result) {
	t.Helper()
	cfg := config.FPGA64()
	cfg.HostWorkers = workers
	var out bytes.Buffer
	sys, err := cycle.New(mustProgram(t, loopAsm), cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	var tm *power.ThermalManager
	if thermal {
		tm, err = power.NewThermalManager(&cfg, interval, 85)
		if err != nil {
			t.Fatal(err)
		}
		sys.AddActivityPlugin(tm)
	}
	smp := metrics.Attach(sys, interval)
	if smp == nil {
		t.Fatal("Attach returned nil for a positive interval")
	}
	if thermal {
		smp.AttachThermal(tm)
	}
	res, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("program did not halt (cycles=%d)", res.Cycles)
	}
	smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	return smp, sys, res
}

func TestSamplerWindows(t *testing.T) {
	smp, sys, res := runSampled(t, 200, 1, false)
	samples := smp.Samples()
	if len(samples) < 3 {
		t.Fatalf("want >= 3 samples for a %d-cycle run at interval 200, got %d", res.Cycles, len(samples))
	}

	// Boundaries land on the interval grid; the final sample may be partial.
	var instrs uint64
	prevCycle := int64(0)
	for i, s := range samples {
		if s.WindowCycles != s.Cycle-prevCycle {
			t.Errorf("sample %d: window %d != cycle delta %d", i, s.WindowCycles, s.Cycle-prevCycle)
		}
		if i < len(samples)-1 && s.Cycle%200 != 0 {
			t.Errorf("sample %d: boundary cycle %d not on the interval grid", i, s.Cycle)
		}
		if s.Instrs != s.MasterInstrs+s.TCUInstrs {
			t.Errorf("sample %d: instrs %d != master %d + tcu %d", i, s.Instrs, s.MasterInstrs, s.TCUInstrs)
		}
		prevCycle = s.Cycle
		instrs += s.Instrs
	}
	last := samples[len(samples)-1]
	if last.Cycle != res.Cycles {
		t.Errorf("final sample at cycle %d, run ended at %d", last.Cycle, res.Cycles)
	}

	// Windowed deltas must sum back to the cumulative counters.
	if instrs != sys.Stats.TotalInstrs() {
		t.Errorf("sample instr sum %d != cumulative %d", instrs, sys.Stats.TotalInstrs())
	}
	var hits, misses uint64
	for _, s := range samples {
		hits += s.CacheHits
		misses += s.CacheMisses
	}
	ch, cm := sys.Stats.TotalCacheHits()
	if hits != ch || misses != cm {
		t.Errorf("sample cache sums %d/%d != cumulative %d/%d", hits, misses, ch, cm)
	}
}

func TestSamplerFinalizeOnBoundaryAddsNothing(t *testing.T) {
	smp, sys, res := runSampled(t, 200, 1, false)
	n := len(smp.Samples())
	// A second Finalize at the same cycle must not append a duplicate.
	smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	if got := len(smp.Samples()); got != n {
		t.Fatalf("repeated Finalize grew the series: %d -> %d", n, got)
	}
}

func TestSamplerJSONLAndCSVDeterminism(t *testing.T) {
	render := func(workers int) (string, string) {
		smp, _, _ := runSampled(t, 200, workers, false)
		var jl, cs bytes.Buffer
		if err := metrics.WriteJSONL(&jl, smp.Header(), smp.Samples()); err != nil {
			t.Fatal(err)
		}
		if err := metrics.WriteCSV(&cs, smp.Samples()); err != nil {
			t.Fatal(err)
		}
		return jl.String(), cs.String()
	}
	refJL, refCSV := render(1)
	for _, w := range []int{2, 4} {
		jl, cs := render(w)
		if jl != refJL {
			t.Errorf("workers=%d: JSONL diverged", w)
		}
		if cs != refCSV {
			t.Errorf("workers=%d: CSV diverged", w)
		}
	}

	// The JSONL stream starts with the schema header.
	line, _, _ := strings.Cut(refJL, "\n")
	var hdr metrics.Header
	if err := json.Unmarshal([]byte(line), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Schema != metrics.SampleSchema || hdr.Interval != 200 {
		t.Fatalf("bad header %+v", hdr)
	}
	// The CSV has the fixed column count on every row.
	rows := strings.Split(strings.TrimSpace(refCSV), "\n")
	want := strings.Count(rows[0], ",") + 1
	for i, r := range rows {
		if got := strings.Count(r, ",") + 1; got != want {
			t.Fatalf("csv row %d has %d columns, want %d", i, got, want)
		}
	}
}

func TestSamplerThermal(t *testing.T) {
	smp, _, _ := runSampled(t, 200, 1, true)
	samples := smp.Samples()
	var withPower int
	for _, s := range samples {
		if s.Power == nil {
			continue
		}
		withPower++
		if s.Power.Watts <= 0 || s.Power.EnergyJ <= 0 {
			t.Errorf("cycle %d: non-positive power %v", s.Cycle, *s.Power)
		}
		if s.Power.PeakTempC < s.Power.MeanTempC {
			t.Errorf("cycle %d: peak %.2f < mean %.2f", s.Cycle, s.Power.PeakTempC, s.Power.MeanTempC)
		}
	}
	if withPower != len(samples) {
		t.Fatalf("thermal attached but only %d/%d samples carry power", withPower, len(samples))
	}

	// Without the plug-in the power block is absent from the JSON.
	plain, _, _ := runSampled(t, 200, 1, false)
	var b bytes.Buffer
	if err := metrics.WriteJSONL(&b, plain.Header(), plain.Samples()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"power"`) {
		t.Fatal("power block present without a thermal plug-in")
	}
}

func TestAttachDisabled(t *testing.T) {
	cfg := config.FPGA64()
	sys, err := cycle.New(mustProgram(t, loopAsm), cfg, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if smp := metrics.Attach(sys, 0); smp != nil {
		t.Fatal("Attach(0) should disable sampling")
	}
}
