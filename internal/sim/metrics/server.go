package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"xmtgo/internal/obs"
	"xmtgo/internal/sim/stats"
)

// Status is the /status payload: the run's current position and health.
type Status struct {
	Cycle              int64  `json:"cycle"`
	Ticks              int64  `json:"ticks"`
	Instrs             uint64 `json:"instrs"`
	AliveTCUs          int    `json:"alive_tcus"`
	DecommissionedTCUs uint64 `json:"decommissioned_tcus"`
	FaultsInjected     uint64 `json:"faults_injected"`
	// WatchdogCycles is the configured no-retire window (0 = disabled);
	// WatchdogSlack estimates the remaining budget before the watchdog would
	// trip, at sample-interval granularity.
	WatchdogCycles int64 `json:"watchdog_cycles"`
	WatchdogSlack  int64 `json:"watchdog_slack,omitempty"`
	// TraceDropped counts sim trace-ring events evicted before draining
	// (previously visible only in the Chrome-trace footer).
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	Done         bool   `json:"done"`

	// Batch is present when an xmtbatch run is being monitored.
	Batch *BatchStatus `json:"batch,omitempty"`
	// Daemon is present when an xmtd daemon is being monitored.
	Daemon *DaemonStatus `json:"daemon,omitempty"`
}

// BatchStatus is the per-job progress of an xmtbatch campaign.
type BatchStatus struct {
	JobsTotal    int    `json:"jobs_total"`
	JobsDone     int    `json:"jobs_done"`
	JobsFailed   int    `json:"jobs_failed"`
	Current      string `json:"current,omitempty"`
	Attempt      int    `json:"attempt,omitempty"`
	Resumes      int    `json:"resumes,omitempty"`
	BudgetCycles int64  `json:"budget_cycles,omitempty"`
}

// DaemonStatus is the xmtd daemon's health block on /status: queue depth,
// per-tenant occupancy and the robustness counters (docs/XMTD.md).
type DaemonStatus struct {
	QueueDepth int  `json:"queue_depth"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
	Draining   bool `json:"draining,omitempty"`

	Tenants map[string]TenantOccupancy `json:"tenants,omitempty"`

	Preemptions uint64 `json:"preemptions"`
	Retries     uint64 `json:"retries"`
	Recoveries  uint64 `json:"recoveries"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`

	// Latencies summarizes the daemon's service-latency histograms
	// (internal/obs), keyed by obs.HistKeys; full bucket series are on
	// /metrics. TraceSpans/TraceDropped describe the lifecycle-span ring,
	// LogDropped the structured-log ring.
	Latencies    map[string]obs.HistSummary `json:"latencies,omitempty"`
	TraceSpans   int                        `json:"trace_spans,omitempty"`
	TraceDropped uint64                     `json:"trace_dropped,omitempty"`
	LogDropped   uint64                     `json:"log_dropped,omitempty"`
}

// TenantOccupancy is one tenant's share of the daemon's queue and workers.
type TenantOccupancy struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// Published is one immutable telemetry bundle: everything the HTTP
// handlers serve. The simulation publishes a fresh bundle at each sampling
// boundary and never mutates an already-published one.
type Published struct {
	Status   Status
	Counters *stats.Snapshot
	Sample   *Sample
	// Job labels the bundle with the daemon job that produced it, so
	// /stream?job=ID subscribers see only that job's samples.
	Job string
}

// Server is the live metrics endpoint: Prometheus-text /metrics, JSON
// /status, and an SSE /stream of interval samples (optionally filtered to
// one daemon job with ?job=ID). It reads only immutable Published bundles
// swapped in atomically from the publishing goroutine, so serving
// concurrent scrapes cannot perturb the simulation.
type Server struct {
	latest atomic.Pointer[Published]
	batch  atomic.Pointer[BatchStatus]
	daemon atomic.Pointer[DaemonStatus]

	mu     sync.Mutex
	subs   map[chan []byte]string // value: job filter ("" = every sample)
	closed bool

	// The mux is created lazily and shared, so routes registered after
	// ListenAndServe (the daemon attaches /logs and its histogram renderer
	// once it finishes recovery) are served by the running listener.
	muxOnce   sync.Once
	mux       *http.ServeMux
	promExtra atomic.Pointer[func(io.Writer)]

	srv *http.Server
	ln  net.Listener
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{subs: make(map[chan []byte]string)}
}

// Publish swaps in the latest bundle and fans the interval sample out to
// /stream subscribers. Non-blocking: a slow subscriber drops samples rather
// than stalling the simulation. Safe to call concurrently from several
// publishers (the daemon runs one per active job) and after Close (a
// no-op fan-out then).
func (s *Server) Publish(p *Published) {
	if b := s.batch.Load(); b != nil && p.Status.Batch == nil {
		p.Status.Batch = b
	}
	if d := s.daemon.Load(); d != nil && p.Status.Daemon == nil {
		p.Status.Daemon = d
	}
	s.latest.Store(p)
	if p.Sample == nil {
		return
	}
	data, err := json.Marshal(p.Sample)
	if err != nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for ch, filter := range s.subs {
		if filter != "" && filter != p.Job {
			continue
		}
		select {
		case ch <- data:
		default: // subscriber is behind; drop
		}
	}
	s.mu.Unlock()
}

// PublishBatch updates the batch-progress block merged into /status.
func (s *Server) PublishBatch(b BatchStatus) {
	s.batch.Store(&b)
	// Refresh the served status immediately so /status reflects job
	// transitions even between sampling boundaries.
	if cur := s.latest.Load(); cur != nil {
		next := *cur
		next.Status.Batch = &b
		s.latest.Store(&next)
	} else {
		s.latest.Store(&Published{Status: Status{Batch: &b}})
	}
}

// PublishDaemon updates the daemon block merged into /status.
func (s *Server) PublishDaemon(d DaemonStatus) {
	s.daemon.Store(&d)
	if cur := s.latest.Load(); cur != nil {
		next := *cur
		next.Status.Daemon = &d
		s.latest.Store(&next)
	} else {
		s.latest.Store(&Published{Status: Status{Daemon: &d}})
	}
}

// Latest returns the most recently published bundle (nil before the first
// publish).
func (s *Server) Latest() *Published { return s.latest.Load() }

// Handler returns the HTTP mux (exported for tests and embedding). The mux
// is shared across calls, so later Handle registrations reach an already-
// serving listener (http.ServeMux is safe for concurrent Handle/ServeHTTP).
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		s.mux = http.NewServeMux()
		s.mux.HandleFunc("/metrics", s.handleMetrics)
		s.mux.HandleFunc("/status", s.handleStatus)
		s.mux.HandleFunc("/stream", s.handleStream)
	})
	return s.mux
}

// Handle registers an additional route (e.g. the daemon's /logs). Safe
// before or after ListenAndServe.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.Handler()
	s.mux.Handle(pattern, h)
}

// SetPromExtra installs a renderer appended to every /metrics response —
// the daemon uses it to expose its service-latency histogram series. It
// runs even before the first published bundle.
func (s *Server) SetPromExtra(fn func(io.Writer)) {
	s.promExtra.Store(&fn)
}

// EnablePprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ on the server's mux (opt-in via the CLIs' -pprof flag).
func (s *Server) EnablePprof() {
	s.Handler()
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ListenAndServe binds addr (e.g. ":8080" or "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address, so callers may pass
// port 0 and discover the real port. A bind failure (port already in use,
// bad address) is returned synchronously so CLIs can report it and exit
// cleanly instead of serving nothing.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and disconnects /stream subscribers. It is
// idempotent — a second Close is a no-op returning nil — and unblocks every
// in-flight SSE stream (their subscription channels close, the handlers
// return, and the HTTP server tears the connections down).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ch := range s.subs {
		close(ch)
		delete(s.subs, ch)
	}
	s.mu.Unlock()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := s.latest.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if p == nil {
		fmt.Fprintln(w, "# no sample published yet")
	} else {
		RenderProm(w, p)
	}
	if fn := s.promExtra.Load(); fn != nil {
		(*fn)(w)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	p := s.latest.Load()
	w.Header().Set("Content-Type", "application/json")
	if p == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	data, err := json.MarshalIndent(&p.Status, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	jobFilter := r.URL.Query().Get("job")

	ch := make(chan []byte, 64)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "server closing", http.StatusServiceUnavailable)
		return
	}
	s.subs[ch] = jobFilter
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, live := s.subs[ch]; live {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Flush the headers right away: a subscriber that connects before the
	// first matching sample must still see its request complete instead of
	// blocking on an unsent status line.
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Replay the latest sample immediately so a subscriber sees data even
	// between boundaries.
	if p := s.latest.Load(); p != nil && p.Sample != nil &&
		(jobFilter == "" || jobFilter == p.Job) {
		if data, err := json.Marshal(p.Sample); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		}
	}
	for {
		select {
		case data, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
