package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"xmtgo/internal/sim/stats"
)

// Status is the /status payload: the run's current position and health.
type Status struct {
	Cycle              int64  `json:"cycle"`
	Ticks              int64  `json:"ticks"`
	Instrs             uint64 `json:"instrs"`
	AliveTCUs          int    `json:"alive_tcus"`
	DecommissionedTCUs uint64 `json:"decommissioned_tcus"`
	FaultsInjected     uint64 `json:"faults_injected"`
	// WatchdogCycles is the configured no-retire window (0 = disabled);
	// WatchdogSlack estimates the remaining budget before the watchdog would
	// trip, at sample-interval granularity.
	WatchdogCycles int64 `json:"watchdog_cycles"`
	WatchdogSlack  int64 `json:"watchdog_slack,omitempty"`
	Done           bool  `json:"done"`

	// Batch is present when an xmtbatch run is being monitored.
	Batch *BatchStatus `json:"batch,omitempty"`
}

// BatchStatus is the per-job progress of an xmtbatch campaign.
type BatchStatus struct {
	JobsTotal    int    `json:"jobs_total"`
	JobsDone     int    `json:"jobs_done"`
	JobsFailed   int    `json:"jobs_failed"`
	Current      string `json:"current,omitempty"`
	Attempt      int    `json:"attempt,omitempty"`
	Resumes      int    `json:"resumes,omitempty"`
	BudgetCycles int64  `json:"budget_cycles,omitempty"`
}

// Published is one immutable telemetry bundle: everything the HTTP
// handlers serve. The simulation publishes a fresh bundle at each sampling
// boundary and never mutates an already-published one.
type Published struct {
	Status   Status
	Counters *stats.Snapshot
	Sample   *Sample
}

// Server is the live metrics endpoint: Prometheus-text /metrics, JSON
// /status, and an SSE /stream of interval samples. It reads only immutable
// Published bundles swapped in atomically from the scheduler goroutine, so
// serving concurrent scrapes cannot perturb the simulation.
type Server struct {
	latest atomic.Pointer[Published]
	batch  atomic.Pointer[BatchStatus]

	mu   sync.Mutex
	subs map[chan []byte]struct{}

	srv *http.Server
	ln  net.Listener
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{subs: make(map[chan []byte]struct{})}
}

// Publish swaps in the latest bundle and fans the interval sample out to
// /stream subscribers. Non-blocking: a slow subscriber drops samples rather
// than stalling the simulation.
func (s *Server) Publish(p *Published) {
	if b := s.batch.Load(); b != nil && p.Status.Batch == nil {
		p.Status.Batch = b
	}
	s.latest.Store(p)
	if p.Sample == nil {
		return
	}
	data, err := json.Marshal(p.Sample)
	if err != nil {
		return
	}
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- data:
		default: // subscriber is behind; drop
		}
	}
	s.mu.Unlock()
}

// PublishBatch updates the batch-progress block merged into /status.
func (s *Server) PublishBatch(b BatchStatus) {
	s.batch.Store(&b)
	// Refresh the served status immediately so /status reflects job
	// transitions even between sampling boundaries.
	if cur := s.latest.Load(); cur != nil {
		next := *cur
		next.Status.Batch = &b
		s.latest.Store(&next)
	} else {
		s.latest.Store(&Published{Status: Status{Batch: &b}})
	}
}

// Latest returns the most recently published bundle (nil before the first
// publish).
func (s *Server) Latest() *Published { return s.latest.Load() }

// Handler returns the HTTP mux (exported for tests and embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/stream", s.handleStream)
	return mux
}

// ListenAndServe binds addr (e.g. ":8080" or "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address, so callers may pass
// port 0 and discover the real port.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and disconnects /stream subscribers.
func (s *Server) Close() error {
	s.mu.Lock()
	for ch := range s.subs {
		close(ch)
		delete(s.subs, ch)
	}
	s.mu.Unlock()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := s.latest.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if p == nil {
		fmt.Fprintln(w, "# no sample published yet")
		return
	}
	RenderProm(w, p)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	p := s.latest.Load()
	w.Header().Set("Content-Type", "application/json")
	if p == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	data, err := json.MarshalIndent(&p.Status, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	ch := make(chan []byte, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, live := s.subs[ch]; live {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}()

	// Replay the latest sample immediately so a subscriber sees data even
	// between boundaries.
	if p := s.latest.Load(); p != nil && p.Sample != nil {
		if data, err := json.Marshal(p.Sample); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		}
	}
	for {
		select {
		case data, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
