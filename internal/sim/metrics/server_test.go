package metrics_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/stats"
)

func testBundle(cycleN int64) *metrics.Published {
	col := &stats.Collector{}
	col.MasterInstrs = 100
	col.TCUInstrs = 900
	return &metrics.Published{
		Status: metrics.Status{
			Cycle: cycleN, Ticks: cycleN * 8, Instrs: 1000, AliveTCUs: 64,
			WatchdogCycles: 5000, WatchdogSlack: 4000,
		},
		Counters: col.Snapshot(cycleN, cycleN*8),
		Sample: &metrics.Sample{
			Cycle: cycleN, Ticks: cycleN * 8, WindowCycles: 500,
			Instrs: 1000, MasterInstrs: 100, TCUInstrs: 900, IPC: 2,
			AliveTCUs: 64,
		},
	}
}

func startServer(t *testing.T) (*metrics.Server, string) {
	t.Helper()
	srv := metrics.NewServer()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	srv, addr := startServer(t)

	// Before any publish, endpoints respond but carry no data.
	body, _ := get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "no sample published yet") {
		t.Errorf("empty /metrics = %q", body)
	}
	if body, _ = get(t, "http://"+addr+"/status"); strings.TrimSpace(body) != "{}" {
		t.Errorf("empty /status = %q", body)
	}

	srv.Publish(testBundle(500))

	body, ctype := get(t, "http://"+addr+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"xmt_cycle 500",
		`xmt_instructions_total{kind="tcu"} 900`,
		`xmt_stall_cycles_total{cause="mem"} 0`,
		"xmt_tcus_alive 64",
		"xmt_watchdog_slack_cycles 4000",
		"xmt_interval_ipc 2",
		`xmt_faults_injected_total{kind="tcu_fail"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get(t, "http://"+addr+"/status")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/status content type = %q", ctype)
	}
	var st metrics.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status: %v\n%s", err, body)
	}
	if st.Cycle != 500 || st.AliveTCUs != 64 || st.WatchdogSlack != 4000 {
		t.Errorf("/status = %+v", st)
	}
	if st.Batch != nil {
		t.Errorf("unexpected batch block: %+v", st.Batch)
	}
}

func TestServerBatchStatus(t *testing.T) {
	srv, addr := startServer(t)
	srv.PublishBatch(metrics.BatchStatus{JobsTotal: 3, JobsDone: 1, Current: "job-b", Attempt: 2})

	body, _ := get(t, "http://"+addr+"/status")
	var st metrics.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil || st.Batch.JobsTotal != 3 || st.Batch.Current != "job-b" {
		t.Fatalf("/status batch = %+v", st.Batch)
	}

	// A later sample publish keeps the batch block merged in.
	srv.Publish(testBundle(900))
	body, _ = get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "xmt_batch_jobs_total 3") {
		t.Errorf("/metrics missing batch families:\n%s", body)
	}
}

func TestServerStream(t *testing.T) {
	srv, addr := startServer(t)
	srv.Publish(testBundle(100))

	resp, err := http.Get("http://" + addr + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/stream content type = %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				lines <- data
			}
		}
		close(lines)
	}()

	readSample := func() metrics.Sample {
		t.Helper()
		select {
		case data := <-lines:
			var s metrics.Sample
			if err := json.Unmarshal([]byte(data), &s); err != nil {
				t.Fatalf("stream line %q: %v", data, err)
			}
			return s
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a stream event")
		}
		panic("unreachable")
	}

	// Subscribers first get a replay of the latest sample, then live ones.
	if s := readSample(); s.Cycle != 100 {
		t.Errorf("replayed sample cycle = %d, want 100", s.Cycle)
	}
	srv.Publish(testBundle(200))
	if s := readSample(); s.Cycle != 200 {
		t.Errorf("live sample cycle = %d, want 200", s.Cycle)
	}
}

func TestRenderPromDeterministic(t *testing.T) {
	p := testBundle(500)
	p.Sample.Power = &metrics.PowerSample{EnergyJ: 0.5, Watts: 12.5, PeakTempC: 61.25, MeanTempC: 55, Throttled: true}
	var a, b strings.Builder
	metrics.RenderProm(&a, p)
	metrics.RenderProm(&b, p)
	if a.String() != b.String() {
		t.Fatal("RenderProm is not deterministic")
	}
	for _, want := range []string{
		"xmt_power_watts 12.5",
		"xmt_temp_peak_celsius 61.25",
		"xmt_thermal_throttled 1",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("missing %q in:\n%s", want, a.String())
		}
	}
	// Every family is declared before use.
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := strings.Cut(line, "{")
		name, _, _ = strings.Cut(name, " ")
		if !strings.Contains(a.String(), fmt.Sprintf("# TYPE %s ", name)) {
			t.Errorf("metric %q has no TYPE declaration", name)
		}
	}
}

func TestServerCloseIdempotentAndUnblocksStreams(t *testing.T) {
	srv, addr := startServer(t)
	srv.Publish(testBundle(100))

	// Open two in-flight SSE streams and prove Close unblocks both.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		resp, err := http.Get("http://" + addr + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/stream: %s", resp.Status)
		}
		go func() {
			_, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			done <- err
		}()
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
			// Either clean EOF or a reset — all that matters is the handler
			// returned and the connection died instead of hanging forever.
		case <-time.After(5 * time.Second):
			t.Fatal("SSE stream still blocked after Close")
		}
	}

	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Publishing after Close is a harmless no-op.
	srv.Publish(testBundle(200))

	// New subscriptions are refused once closing.
	if resp, err := http.Get("http://" + addr + "/stream"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("/stream accepted a subscriber after Close")
		}
		resp.Body.Close()
	}
}

func TestServerBindFailureIsCleanError(t *testing.T) {
	srv, addr := startServer(t)
	defer srv.Close()

	// Binding the same address again must fail synchronously with a wrapped
	// error, not panic or serve nothing.
	dup := metrics.NewServer()
	if _, err := dup.ListenAndServe(addr); err == nil {
		dup.Close()
		t.Fatal("duplicate bind succeeded")
	} else if !strings.Contains(err.Error(), "metrics: listen") {
		t.Errorf("bind error = %v, want a metrics: listen wrap", err)
	}
	// Close on a never-started server is a clean no-op too.
	if err := dup.Close(); err != nil {
		t.Errorf("Close after failed bind: %v", err)
	}
}

func TestServerStreamJobFilter(t *testing.T) {
	srv, addr := startServer(t)

	sub := func(query string) chan string {
		resp, err := http.Get("http://" + addr + "/stream" + query)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		lines := make(chan string, 16)
		go func() {
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
					lines <- data
				}
			}
			close(lines)
		}()
		return lines
	}
	read := func(lines chan string) *metrics.Sample {
		t.Helper()
		select {
		case data := <-lines:
			var s metrics.Sample
			if err := json.Unmarshal([]byte(data), &s); err != nil {
				t.Fatalf("stream line %q: %v", data, err)
			}
			return &s
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a stream event")
		}
		panic("unreachable")
	}

	all := sub("")
	onlyB := sub("?job=jB")

	pub := func(job string, cycle int64) {
		p := testBundle(cycle)
		p.Job = job
		srv.Publish(p)
	}
	pub("jA", 100)
	pub("jB", 200)

	// The unfiltered subscriber sees both samples in order.
	if s := read(all); s.Cycle != 100 {
		t.Errorf("unfiltered first sample cycle = %d, want 100", s.Cycle)
	}
	if s := read(all); s.Cycle != 200 {
		t.Errorf("unfiltered second sample cycle = %d, want 200", s.Cycle)
	}
	// The job-filtered subscriber sees only jB's sample.
	if s := read(onlyB); s.Cycle != 200 {
		t.Errorf("filtered sample cycle = %d, want 200 (jB only)", s.Cycle)
	}
}
