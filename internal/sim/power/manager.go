package power

import (
	"math"

	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/thermal"
)

// ThermalManager is a ready-made activity plug-in that closes the loop the
// paper's §III-F describes as unique to XMTSim: it samples the activity
// counters at a fixed interval, converts them to power, advances the
// thermal grid, and throttles the cluster clock domain when the hottest
// cell crosses a threshold (restoring the nominal frequency once it cools
// below the threshold minus a hysteresis band).
type ThermalManager struct {
	cfg   *config.Config
	model *Model
	grid  *thermal.Grid

	Interval      int64   // sampling interval in cluster cycles
	ThresholdC    float64 // throttle above this temperature
	HysteresisC   float64 // un-throttle below Threshold-Hysteresis
	SlowPeriod    int64   // cluster period while throttled
	NominalPeriod int64

	gridW, gridH int
	lastNow      engine.Time
	throttled    bool

	// History records one entry per sample for analysis and plots.
	History []ManagerSample
}

// ManagerSample is one recorded control step.
type ManagerSample struct {
	Cycle     int64
	MaxTemp   float64
	MeanTemp  float64
	TotalWatt float64
	Throttled bool
}

// NewThermalManager builds a manager with a near-square cluster grid.
func NewThermalManager(cfg *config.Config, intervalCycles int64, thresholdC float64) (*ThermalManager, error) {
	w := int(math.Ceil(math.Sqrt(float64(cfg.Clusters))))
	h := (cfg.Clusters + w - 1) / w
	grid, err := thermal.NewGrid(w, h, thermal.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &ThermalManager{
		cfg:           cfg,
		model:         New(cfg),
		grid:          grid,
		Interval:      intervalCycles,
		ThresholdC:    thresholdC,
		HysteresisC:   3,
		SlowPeriod:    cfg.ClusterPeriod * 2,
		NominalPeriod: cfg.ClusterPeriod,
		gridW:         w,
		gridH:         h,
	}, nil
}

// Grid exposes the thermal grid (for floorplan visualization).
func (tm *ThermalManager) Grid() *thermal.Grid { return tm.grid }

// Throttled reports the current control state.
func (tm *ThermalManager) Throttled() bool { return tm.throttled }

// Name implements cycle.ActivityPlugin.
func (tm *ThermalManager) Name() string { return "thermal-manager" }

// IntervalCycles implements cycle.ActivityPlugin.
func (tm *ThermalManager) IntervalCycles() int64 { return tm.Interval }

// Sample implements cycle.ActivityPlugin.
func (tm *ThermalManager) Sample(snap *cycle.Snapshot, ctl *cycle.Control) {
	window := snap.Now - tm.lastNow
	tm.lastNow = snap.Now
	ps := tm.model.Sample(snap.Stats, window)

	// Spread per-cluster power over the grid; uncore power is distributed
	// uniformly (the ICN and caches interleave across the die).
	cells := make([]float64, tm.gridW*tm.gridH)
	for i, w := range ps.PerCluster {
		cells[i] += w
	}
	share := ps.Uncore / float64(len(cells))
	for i := range cells {
		cells[i] += share
	}
	if err := tm.grid.Step(cells, ps.WindowSeconds); err != nil {
		return
	}

	max := tm.grid.Max()
	switch {
	case !tm.throttled && max > tm.ThresholdC:
		if err := ctl.SetPeriod("cluster", tm.SlowPeriod); err == nil {
			tm.throttled = true
		}
	case tm.throttled && max < tm.ThresholdC-tm.HysteresisC:
		if err := ctl.SetPeriod("cluster", tm.NominalPeriod); err == nil {
			tm.throttled = false
		}
	}
	tm.History = append(tm.History, ManagerSample{
		Cycle:     snap.Cycle,
		MaxTemp:   max,
		MeanTemp:  tm.grid.Mean(),
		TotalWatt: ps.Total,
		Throttled: tm.throttled,
	})
}
