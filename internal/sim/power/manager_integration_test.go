package power_test

import (
	"io"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/power"
	"xmtgo/internal/workloads"
)

// TestThermalManagerClosedLoop drives the full §III-F pipeline on a real
// simulation: activity counters -> power samples -> thermal grid ->
// DVFS throttling once the threshold is crossed, with hysteresis.
func TestThermalManagerClosedLoop(t *testing.T) {
	cfg := config.FPGA64()
	src := workloads.TableI(workloads.ParallelCompute, cfg.TCUs(), 3000)
	res, err := codegen.Compile("hot.c", src, codegen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(res.Unit)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cycle.New(prog, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// A low threshold guarantees the throttle engages on this workload.
	tm, err := power.NewThermalManager(&cfg, 2000, 50)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddActivityPlugin(tm)
	simRes, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Halted {
		t.Fatal("did not halt")
	}
	if len(tm.History) < 5 {
		t.Fatalf("only %d samples", len(tm.History))
	}
	sawHot := false
	sawThrottle := false
	for _, s := range tm.History {
		if s.MaxTemp > 50 {
			sawHot = true
		}
		if s.Throttled {
			sawThrottle = true
		}
		if s.TotalWatt <= 0 {
			t.Fatal("non-positive power sample")
		}
		if s.MeanTemp > s.MaxTemp+1e-9 {
			t.Fatal("mean above max")
		}
	}
	if !sawHot || !sawThrottle {
		t.Fatalf("thermal loop never engaged (hot=%v throttled=%v, peak %f)",
			sawHot, sawThrottle, maxTemp(tm))
	}
	// Temperatures must never run away.
	if maxTemp(tm) > 200 {
		t.Fatalf("implausible temperature %f", maxTemp(tm))
	}
}

func maxTemp(tm *power.ThermalManager) float64 {
	peak := 0.0
	for _, s := range tm.History {
		if s.MaxTemp > peak {
			peak = s.MaxTemp
		}
	}
	return peak
}
