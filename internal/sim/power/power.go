// Package power implements XMTSim's power estimation (paper §III-F): the
// power output is computed as a function of the activity counters. The
// model is a lumped per-event energy model — each committed ALU/MDU/FPU
// operation, memory access, ICN hop, cache access and DRAM access costs a
// configured energy, and each cluster contributes static leakage — sampled
// over activity-plug-in windows so a dynamic power/thermal manager can act
// on it at runtime.
package power

import (
	"xmtgo/internal/config"
	"xmtgo/internal/sim/stats"
)

// NominalTickSeconds maps the engine's abstract ticks onto wall-clock time
// for power computation: 0.125 ns per tick makes the default 8-tick cluster
// period a 1 GHz clock.
const NominalTickSeconds = 0.125e-9

// Model converts activity-counter deltas into watts.
type Model struct {
	cfg *config.Config

	// prev holds the counter values at the previous sample.
	prevCluster []stats.ClusterStats
	prevICNHops uint64
	prevCacheHM uint64
	prevDRAM    uint64
}

// New creates a power model for the machine configuration.
func New(cfg *config.Config) *Model {
	return &Model{cfg: cfg, prevCluster: make([]stats.ClusterStats, cfg.Clusters)}
}

// Sample is one power report.
type Sample struct {
	WindowSeconds float64
	// PerCluster dynamic+static watts, indexed by cluster.
	PerCluster []float64
	// Uncore covers ICN, shared cache and DRAM dynamic power plus global
	// static power.
	Uncore float64
	// Total watts.
	Total float64
}

// Sample computes power over the window since the previous call.
// windowTicks is the elapsed simulated time in engine ticks.
func (m *Model) Sample(c *stats.Collector, windowTicks int64) Sample {
	sec := float64(windowTicks) * NominalTickSeconds
	if sec <= 0 {
		sec = NominalTickSeconds
	}
	out := Sample{WindowSeconds: sec, PerCluster: make([]float64, len(m.prevCluster))}

	for i := range m.prevCluster {
		cur := c.Cluster[i]
		prev := m.prevCluster[i]
		nJ := float64(cur.ALUOps-prev.ALUOps)*m.cfg.EnergyALU +
			float64(cur.FPUOps-prev.FPUOps)*m.cfg.EnergyFPU +
			float64(cur.MDUOps-prev.MDUOps)*m.cfg.EnergyMDU +
			float64(cur.MemOps-prev.MemOps)*m.cfg.EnergyMem
		m.prevCluster[i] = cur
		out.PerCluster[i] = nJ*1e-9/sec + m.cfg.StaticWattsPerCluster
		out.Total += out.PerCluster[i]
	}

	hops := c.ICNHops
	var hits, misses uint64
	hits, misses = c.TotalCacheHits()
	cacheAcc := hits + misses
	var dram uint64
	for _, d := range c.DRAMAccesses {
		dram += d
	}
	uncoreNJ := float64(hops-m.prevICNHops)*m.cfg.EnergyICNHop +
		float64(cacheAcc-m.prevCacheHM)*m.cfg.EnergyCache +
		float64(dram-m.prevDRAM)*m.cfg.EnergyDRAM
	m.prevICNHops, m.prevCacheHM, m.prevDRAM = hops, cacheAcc, dram

	out.Uncore = uncoreNJ*1e-9/sec + m.cfg.StaticWattsOther
	out.Total += out.Uncore
	return out
}
