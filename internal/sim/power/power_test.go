package power

import (
	"math"
	"testing"

	"xmtgo/internal/config"
	"xmtgo/internal/sim/stats"
)

func TestPowerSampleMath(t *testing.T) {
	cfg := config.FPGA64()
	m := New(&cfg)
	c := stats.NewCollector(cfg.Clusters, cfg.CacheModules, cfg.DRAMPorts)

	// Idle window: static power only.
	ticks := int64(8000) // 1000 cycles * 8 ticks = 1 µs at the nominal clock
	s := m.Sample(c, ticks)
	wantStatic := float64(cfg.Clusters)*cfg.StaticWattsPerCluster + cfg.StaticWattsOther
	if math.Abs(s.Total-wantStatic) > 1e-9 {
		t.Fatalf("idle power %.3f, want static %.3f", s.Total, wantStatic)
	}

	// Busy window: cluster 0 does 1000 ALU ops.
	c.Cluster[0].ALUOps = 1000
	s = m.Sample(c, ticks)
	sec := float64(ticks) * NominalTickSeconds
	wantDyn := 1000 * cfg.EnergyALU * 1e-9 / sec
	got := s.PerCluster[0] - cfg.StaticWattsPerCluster
	if math.Abs(got-wantDyn) > 1e-9 {
		t.Fatalf("cluster 0 dynamic %.4f, want %.4f", got, wantDyn)
	}

	// Deltas: a third sample with no new activity is static again.
	s = m.Sample(c, ticks)
	if math.Abs(s.Total-wantStatic) > 1e-9 {
		t.Fatalf("delta accounting broken: %.3f", s.Total)
	}
}

func TestUncorePower(t *testing.T) {
	cfg := config.FPGA64()
	m := New(&cfg)
	c := stats.NewCollector(cfg.Clusters, cfg.CacheModules, cfg.DRAMPorts)
	c.ICNHops = 1000
	c.CacheHits[0] = 500
	c.DRAMAccesses[0] = 100
	s := m.Sample(c, 8000)
	sec := 8000 * NominalTickSeconds
	wantDyn := (1000*cfg.EnergyICNHop + 500*cfg.EnergyCache + 100*cfg.EnergyDRAM) * 1e-9 / sec
	got := s.Uncore - cfg.StaticWattsOther
	if math.Abs(got-wantDyn) > 1e-9 {
		t.Fatalf("uncore dynamic %.4f, want %.4f", got, wantDyn)
	}
}

func TestThermalManagerConstruction(t *testing.T) {
	cfg := config.Chip1024()
	tm, err := NewThermalManager(&cfg, 1000, 85)
	if err != nil {
		t.Fatal(err)
	}
	if tm.IntervalCycles() != 1000 || tm.Name() == "" {
		t.Fatal("plugin interface wrong")
	}
	g := tm.Grid()
	if g.W*g.H < cfg.Clusters {
		t.Fatalf("grid %dx%d too small for %d clusters", g.W, g.H, cfg.Clusters)
	}
	if tm.Throttled() {
		t.Fatal("must start unthrottled")
	}
}
