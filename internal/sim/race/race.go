// Package race is xmtsan: a deterministic happens-before race sanitizer
// for the cycle-accurate simulator. It shadows every word of shared memory
// touched during a spawn epoch and checks each conflicting pair of accesses
// from different TCUs against the XMT synchronization discipline the
// paper's Fig. 6/Fig. 7 litmus tests illustrate:
//
//   - the spawn broadcast and the join barrier order everything across
//     epochs, so shadow state resets at every spawn/join boundary;
//   - within an epoch the only inter-thread ordering primitive is the
//     prefix-sum: a conflicting pair (two accesses to the same word from
//     different TCUs, at least one a write) is clean only if the writing
//     thread issues a ps/psm after its write *in its own program order*
//     (release) and the other thread issued one before its access
//     (acquire) — the Fig. 7 pattern. Anything less leaves the pair
//     exposed to the relaxed memory order (prefetch buffers serving stale
//     lines, the Fig. 6 failure);
//   - psm accesses themselves are the discipline and never race.
//
// Determinism: every entry point is called from the simulator's serial
// contexts (the cache macro-actor, outbox commit in cluster-id order, the
// scheduler goroutine), state is keyed and iterated so that no map order
// ever leaks into output, and reports are appended in detection order.
// Reports are therefore byte-identical for any Config.HostWorkers and
// across checkpoint/resume.
//
// The sanitizer is a *dynamic* detector: it reports races the executed
// schedule actually exposed as conflicting access pairs, attributed to
// source lines via the instruction stream's line table. It is the ground
// truth the static spawn-race check is differentially validated against
// (docs/ANALYZER.md).
package race

import (
	"fmt"
	"io"
	"sort"

	"xmtgo/internal/diag"
)

// Report is one deduplicated race: a write left unsynchronized with a
// conflicting access on another TCU. Addr is the first word the pair was
// observed on (further words with the same line pair are folded in).
type Report struct {
	Addr      uint32
	WriteTCU  int // global TCU id of the writer
	WriteLine int // source line of the write
	OtherTCU  int
	OtherLine int
	// OtherWrite distinguishes write/write from read/write pairs.
	OtherWrite bool
}

// String renders one report line (stable format, used in goldens).
func (r *Report) String() string {
	kind := "read"
	if r.OtherWrite {
		kind = "write"
	}
	return fmt.Sprintf("race: word 0x%08x: write at line %d (tcu %d) unsynchronized with %s at line %d (tcu %d)",
		r.Addr, r.WriteLine, r.WriteTCU, kind, r.OtherLine, r.OtherTCU)
}

// access is one remembered shadow access.
type access struct {
	tcu   int
	line  int
	syncs int // the TCU's epoch sync count when it made the access
	valid bool
}

// word is the shadow state of one aligned memory word within an epoch.
type word struct {
	lastWrite access
	// readers holds at most one (the first) read per TCU this epoch.
	readers []access
}

// pending is a conflicting pair whose cleanliness hinges on the writer
// issuing a prefix-sum after its write; it is resolved at the writer's next
// sync or condemned at the epoch end. (A writer that had already released
// by the time the other access arrived never becomes pending: the clean
// verdict is reached at the access itself.)
type pending struct {
	writerTCU int
	rep       Report
}

// lineKey dedupes reports by source-line pair within one epoch (address
// excluded: one racy line pair over a 10k-element array is one bug, not
// 10k). Dedup is epoch-scoped, not global: each spawn epoch is a distinct
// parallel section, and scoping the state to the epoch makes the report
// stream an exact concatenation over epochs — which is what lets a run
// chopped at checkpoints (always between epochs) reproduce the full-run
// report segment by segment.
type lineKey struct {
	writeLine, otherLine int
	otherWrite           bool
}

// Detector is the xmtsan engine. It is not goroutine-safe: the simulator
// only calls it from serial contexts.
type Detector struct {
	words   map[uint32]*word
	syncs   []int // per global TCU id: prefix-sums issued this epoch
	pending []pending
	reports []Report
	seen    map[lineKey]bool
	checks  uint64
	inEpoch bool
}

// New returns a detector for a machine with numTCUs total TCUs.
func New(numTCUs int) *Detector {
	return &Detector{
		words: make(map[uint32]*word),
		syncs: make([]int, numTCUs),
		seen:  make(map[lineKey]bool),
	}
}

// EpochBegin resets the shadow state at a spawn broadcast: the broadcast
// orders the serial prefix against every virtual thread.
func (d *Detector) EpochBegin() {
	d.resetEpoch()
	d.inEpoch = true
}

// EpochEnd runs at the join barrier: every pending pair whose writer never
// issued a release prefix-sum is now a confirmed race, in detection order.
func (d *Detector) EpochEnd() {
	for i := range d.pending {
		d.confirm(d.pending[i].rep)
	}
	d.resetEpoch()
	d.inEpoch = false
}

func (d *Detector) resetEpoch() {
	d.words = make(map[uint32]*word)
	d.pending = d.pending[:0]
	d.seen = make(map[lineKey]bool)
	for i := range d.syncs {
		d.syncs[i] = 0
	}
}

// Sync records a release/acquire prefix-sum by tcu (an OpPs other than the
// thread-id grab, or a psm reaching its cache module). Pending pairs
// waiting on this writer's release are now clean.
func (d *Detector) Sync(tcu int) {
	if !d.inEpoch || tcu < 0 || tcu >= len(d.syncs) {
		return
	}
	d.syncs[tcu]++
	kept := d.pending[:0]
	for _, p := range d.pending {
		if p.writerTCU != tcu {
			kept = append(kept, p)
		}
	}
	d.pending = kept
}

// SyncAccess records a psm access to addr: it both synchronizes the TCU and
// touches the word in the one way the discipline blesses, so no shadow
// conflict is recorded.
func (d *Detector) SyncAccess(tcu int, addr uint32, line int) {
	d.Sync(tcu)
}

// Read checks a shared-memory read.
func (d *Detector) Read(tcu int, addr uint32, line int) {
	if !d.inEpoch || tcu < 0 || tcu >= len(d.syncs) {
		return
	}
	d.checks++
	w := d.word(addr)
	if lw := w.lastWrite; lw.valid && lw.tcu != tcu {
		rep := Report{
			Addr: addr &^ 3, WriteTCU: lw.tcu, WriteLine: lw.line,
			OtherTCU: tcu, OtherLine: line,
		}
		switch {
		case d.syncs[tcu] == 0:
			// The reader never acquired: racy regardless of the writer.
			d.confirm(rep)
		case d.syncs[lw.tcu] > lw.syncs:
			// Acquired reader, writer already released after its write:
			// the Fig. 7 discipline held. Clean.
		default:
			// Acquired reader; clean iff the writer releases later.
			d.addPending(lw.tcu, rep)
		}
	}
	for _, r := range w.readers {
		if r.tcu == tcu {
			return // one remembered read per TCU per word is enough
		}
	}
	w.readers = append(w.readers, access{tcu: tcu, line: line, syncs: d.syncs[tcu], valid: true})
}

// Write checks a shared-memory write.
func (d *Detector) Write(tcu int, addr uint32, line int) {
	if !d.inEpoch || tcu < 0 || tcu >= len(d.syncs) {
		return
	}
	d.checks++
	w := d.word(addr)
	if lw := w.lastWrite; lw.valid && lw.tcu != tcu {
		rep := Report{
			Addr: addr &^ 3, WriteTCU: lw.tcu, WriteLine: lw.line,
			OtherTCU: tcu, OtherLine: line, OtherWrite: true,
		}
		switch {
		case d.syncs[tcu] == 0:
			d.confirm(rep)
		case d.syncs[lw.tcu] > lw.syncs:
			// Prior writer released in between: ordered, clean.
		default:
			d.addPending(lw.tcu, rep)
		}
	}
	// Earlier reads by other TCUs conflict with this write: this writer
	// must release after it (necessarily in the future, so pending), and
	// each reader must have acquired before reading.
	me := access{tcu: tcu, line: line, syncs: d.syncs[tcu], valid: true}
	for _, r := range w.readers {
		if r.tcu == tcu {
			continue
		}
		rep := Report{
			Addr: addr &^ 3, WriteTCU: tcu, WriteLine: line,
			OtherTCU: r.tcu, OtherLine: r.line,
		}
		if r.syncs == 0 {
			d.confirm(rep)
		} else {
			d.addPending(tcu, rep)
		}
	}
	w.lastWrite = me
}

func (d *Detector) word(addr uint32) *word {
	k := addr &^ 3
	w := d.words[k]
	if w == nil {
		w = &word{}
		d.words[k] = w
	}
	return w
}

func (d *Detector) addPending(writerTCU int, rep Report) {
	if d.seen[keyOf(rep)] {
		return // line pair already reported
	}
	for _, p := range d.pending {
		if p.rep == rep {
			return
		}
	}
	d.pending = append(d.pending, pending{writerTCU: writerTCU, rep: rep})
}

func keyOf(rep Report) lineKey {
	return lineKey{writeLine: rep.WriteLine, otherLine: rep.OtherLine, otherWrite: rep.OtherWrite}
}

func (d *Detector) confirm(rep Report) {
	k := keyOf(rep)
	if d.seen[k] {
		return
	}
	d.seen[k] = true
	d.reports = append(d.reports, rep)
}

// Checks returns the number of shadow checks performed.
func (d *Detector) Checks() uint64 { return d.checks }

// Reports returns the confirmed races in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// WriteReport renders the sanitizer's findings as stable text, one line
// per race plus a summary line. The output is byte-identical for any host
// worker count.
func (d *Detector) WriteReport(w io.Writer) error {
	for i := range d.reports {
		if _, err := fmt.Fprintln(w, d.reports[i].String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "xmtsan: %d race(s), %d word-access check(s)\n",
		len(d.reports), d.checks)
	return err
}

// Diagnostics converts the reports to analyzer-style diagnostics (check
// "xmtsan") attributed to file, sorted by line, for xmtlint-compatible
// consumers and the differential gate against the static spawn-race check.
func (d *Detector) Diagnostics(file string) []diag.Diagnostic {
	ds := make([]diag.Diagnostic, 0, len(d.reports))
	for i := range d.reports {
		r := &d.reports[i]
		kind := "read"
		if r.OtherWrite {
			kind = "write"
		}
		ds = append(ds, diag.Diagnostic{
			Check:    "xmtsan",
			Severity: diag.Warning,
			Pos:      diag.Pos{File: file, Line: r.WriteLine, Col: 1},
			Msg: fmt.Sprintf("data race observed on word 0x%08x: write by tcu %d not synchronized with the %s at line %d by tcu %d",
				r.Addr, r.WriteTCU, kind, r.OtherLine, r.OtherTCU),
		})
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Pos.Line < ds[j].Pos.Line })
	return ds
}
