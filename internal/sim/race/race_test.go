package race

import (
	"strings"
	"testing"
)

// Fig. 6 (relaxed, racy): TCU 0 stores data then flag with plain stores;
// TCU 1 reads flag then data with no prefix-sum on either side. Both pairs
// are races no matter which order the cache modules service the packets.
func TestFig6RacyBothOrders(t *testing.T) {
	const data, flag = 0x100, 0x104
	run := func(writerFirst bool) []Report {
		d := New(4)
		d.EpochBegin()
		if writerFirst {
			d.Write(0, data, 10)
			d.Write(0, flag, 11)
			d.Read(1, flag, 20)
			d.Read(1, data, 21)
		} else {
			d.Read(1, flag, 20)
			d.Read(1, data, 21)
			d.Write(0, data, 10)
			d.Write(0, flag, 11)
		}
		d.EpochEnd()
		return d.Reports()
	}
	for _, writerFirst := range []bool{true, false} {
		reps := run(writerFirst)
		if len(reps) != 2 {
			t.Fatalf("writerFirst=%v: %d reports, want 2 (flag pair, data pair)", writerFirst, len(reps))
		}
		for _, r := range reps {
			if r.WriteTCU == r.OtherTCU {
				t.Errorf("writerFirst=%v: same-TCU pair reported: %s", writerFirst, r.String())
			}
			if r.OtherWrite {
				t.Errorf("writerFirst=%v: read/write pair reported as write/write: %s", writerFirst, r.String())
			}
		}
	}
}

// Fig. 7 (psm-synchronized): the writer stores data and then updates the
// flag via psm (release); the reader polls the flag via psm (acquire) and
// then reads data. Clean in both service orders — in the writer-first order
// the clean verdict is reached at the read, in the reader-first order the
// conflict would not even form because the writer's store lands later in
// the epoch with the reader's read already acquired... which still pends on
// the writer's release; the trailing psm resolves it.
func TestFig7SynchronizedClean(t *testing.T) {
	const data, flag = 0x200, 0x204
	d := New(4)
	d.EpochBegin()
	d.Write(0, data, 10)      // plain store of the payload
	d.SyncAccess(0, flag, 11) // psm release
	d.SyncAccess(1, flag, 20) // psm acquire (poll observes the flag)
	d.Read(1, data, 21)       // payload read: writer released, reader acquired
	d.EpochEnd()
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("synchronized Fig. 7 pattern reported %d race(s): %v", n, d.Reports())
	}
}

// The reader acquires before its read but the writer's release only comes
// later in the epoch: the pair pends and is resolved clean at the writer's
// next prefix-sum.
func TestPendingResolvedByLaterRelease(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Sync(1)           // reader acquires early
	d.Write(0, 0x40, 5) // writer stores
	d.Read(1, 0x40, 9)  // conflict pends on writer's release
	d.Sync(0)           // release arrives before the join
	d.EpochEnd()
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("release before join should clear the pending pair, got %d report(s)", n)
	}
}

// Same shape, but the writer never releases: the pending pair is condemned
// at the join barrier.
func TestPendingCondemnedAtEpochEnd(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Sync(1)
	d.Write(0, 0x40, 5)
	d.Read(1, 0x40, 9)
	d.EpochEnd()
	reps := d.Reports()
	if len(reps) != 1 {
		t.Fatalf("%d reports, want 1", len(reps))
	}
	if reps[0].WriteTCU != 0 || reps[0].OtherTCU != 1 || reps[0].OtherWrite {
		t.Fatalf("wrong attribution: %s", reps[0].String())
	}
}

// Write/write conflicts follow the same discipline.
func TestWriteWritePair(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Write(0, 0x80, 3)
	d.Write(1, 0x80, 7) // second writer never acquired: immediate race
	d.EpochEnd()
	reps := d.Reports()
	if len(reps) != 1 || !reps[0].OtherWrite {
		t.Fatalf("want one write/write report, got %v", reps)
	}
	if got, want := reps[0].String(),
		"race: word 0x00000080: write at line 3 (tcu 0) unsynchronized with write at line 7 (tcu 1)"; got != want {
		t.Fatalf("report text:\n got %q\nwant %q", got, want)
	}
}

// A read followed by a conflicting write: the reader's acquire state is
// judged as of the read, and the writer's release is necessarily pending.
func TestReadThenWriteConflict(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Read(1, 0x10, 9)  // reader never acquired
	d.Write(0, 0x10, 4) // conflict detected here, immediate
	d.EpochEnd()
	reps := d.Reports()
	if len(reps) != 1 || reps[0].WriteTCU != 0 || reps[0].OtherTCU != 1 {
		t.Fatalf("want one report attributing write=tcu0 read=tcu1, got %v", reps)
	}
}

// Same-TCU accesses are program-ordered and never conflict; accesses to
// different words never conflict; the join resets the shadow state so the
// next epoch starts clean.
func TestNoFalseConflicts(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Write(0, 0x10, 1)
	d.Read(0, 0x10, 2)  // same TCU
	d.Write(0, 0x10, 3) // same TCU overwrite
	d.Write(1, 0x20, 4) // different word
	d.EpochEnd()
	d.EpochBegin()
	d.Read(1, 0x10, 5) // previous epoch's write is barrier-ordered
	d.EpochEnd()
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("false conflicts: %v", d.Reports())
	}
	if d.Checks() == 0 {
		t.Fatal("checks counter never advanced")
	}
}

// Byte-addressed accesses fold onto their aligned word.
func TestWordGranularity(t *testing.T) {
	d := New(2)
	d.EpochBegin()
	d.Write(0, 0x101, 1)
	d.Read(1, 0x102, 2) // same aligned word 0x100
	d.EpochEnd()
	reps := d.Reports()
	if len(reps) != 1 || reps[0].Addr != 0x100 {
		t.Fatalf("want one report on word 0x100, got %v", reps)
	}
}

// Reports are deduplicated by line pair: a racy loop over an array yields
// one report, not one per element.
func TestLinePairDedup(t *testing.T) {
	d := New(8)
	d.EpochBegin()
	for i := 0; i < 64; i++ {
		addr := uint32(0x1000 + 4*i)
		d.Write(0, addr, 12)
		d.Read(1, addr, 30)
	}
	d.EpochEnd()
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("%d reports, want 1 (line-pair dedup)", n)
	}
}

// Accesses outside an epoch (the serial master prefix) are never races: the
// master is alone.
func TestSerialAccessesIgnored(t *testing.T) {
	d := New(2)
	d.Write(0, 0x10, 1)
	d.Read(1, 0x10, 2)
	if len(d.Reports()) != 0 || d.Checks() != 0 {
		t.Fatal("serial-phase accesses must be ignored")
	}
}

func TestWriteReportFormat(t *testing.T) {
	d := New(2)
	d.EpochBegin()
	d.Write(0, 0x40, 3)
	d.Read(1, 0x40, 8)
	d.EpochEnd()
	var sb strings.Builder
	if err := d.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	want := "race: word 0x00000040: write at line 3 (tcu 0) unsynchronized with read at line 8 (tcu 1)\n" +
		"xmtsan: 1 race(s), 2 word-access check(s)\n"
	if sb.String() != want {
		t.Fatalf("report:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestDiagnosticsSortedByLine(t *testing.T) {
	d := New(4)
	d.EpochBegin()
	d.Write(0, 0x50, 9)
	d.Write(1, 0x50, 2)
	d.Write(0, 0x60, 1)
	d.Write(1, 0x60, 4)
	d.EpochEnd()
	ds := d.Diagnostics("t.c")
	if len(ds) != 2 {
		t.Fatalf("%d diagnostics, want 2", len(ds))
	}
	if ds[0].Pos.Line > ds[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by line: %v", ds)
	}
	for _, dg := range ds {
		if dg.Check != "xmtsan" || dg.Pos.File != "t.c" {
			t.Fatalf("bad diagnostic metadata: %+v", dg)
		}
	}
}

// Dedup is epoch-scoped: a racy line pair recurring in a later spawn epoch
// is reported again. This makes the report stream a concatenation over
// epochs, which is exactly what lets a run chopped at checkpoints (always
// between epochs) reproduce the full-run report segment by segment.
func TestDedupIsEpochScoped(t *testing.T) {
	d := New(4)
	for epoch := 0; epoch < 3; epoch++ {
		d.EpochBegin()
		d.Write(0, 0x100, 8)
		d.Read(1, 0x100, 12)
		d.EpochEnd()
	}
	if got := len(d.Reports()); got != 3 {
		t.Fatalf("%d reports for 3 racy epochs, want 3 (one per epoch)", got)
	}
	for i, r := range d.Reports() {
		if r.WriteLine != 8 || r.OtherLine != 12 || r.OtherWrite {
			t.Errorf("epoch %d: unexpected report %s", i, r.String())
		}
	}
}
