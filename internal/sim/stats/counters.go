package stats

import (
	"fmt"
	"io"

	"xmtgo/internal/isa"
)

// ReportCounters writes the full hardware-counter report (xmtsim -counters):
// per-cluster activity with a stall-cycle breakdown by cause, the memory
// system counters, the prefix-sum unit's round-trip latency histogram, and
// spawn/join overheads. The output is byte-deterministic — fixed ordering,
// fixed formatting — so counter reports from different host worker counts
// compare equal byte-for-byte (the golden tests rely on this).
func (c *Collector) ReportCounters(w io.Writer) {
	fmt.Fprintf(w, "== instructions ==\n")
	fmt.Fprintf(w, "total=%d master=%d tcu=%d\n", c.TotalInstrs(), c.MasterInstrs, c.TCUInstrs)
	fmt.Fprintf(w, "by unit:")
	for u := 0; u < isa.NumUnits; u++ {
		if c.InstrByUnit[u] > 0 {
			fmt.Fprintf(w, " %s=%d", isa.Unit(u), c.InstrByUnit[u])
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "== per-cluster activity ==\n")
	fmt.Fprintf(w, "cluster     instrs       alu       fpu       mdu       mem      busy   memwait   fpuwait    pswait sendstall\n")
	var tot ClusterStats
	for i := range c.Cluster {
		cs := &c.Cluster[i]
		fmt.Fprintf(w, "%7d %10d %9d %9d %9d %9d %9d %9d %9d %9d %9d\n",
			i, cs.TCUInstrs, cs.ALUOps, cs.FPUOps, cs.MDUOps, cs.MemOps,
			cs.BusyCycles, cs.MemWaitCycles, cs.FPUWaitCycles, cs.PSWaitCycles, cs.SendStallCycles)
		tot.TCUInstrs += cs.TCUInstrs
		tot.ALUOps += cs.ALUOps
		tot.FPUOps += cs.FPUOps
		tot.MDUOps += cs.MDUOps
		tot.MemOps += cs.MemOps
		tot.BusyCycles += cs.BusyCycles
		tot.MemWaitCycles += cs.MemWaitCycles
		tot.FPUWaitCycles += cs.FPUWaitCycles
		tot.PSWaitCycles += cs.PSWaitCycles
		tot.SendStallCycles += cs.SendStallCycles
	}
	fmt.Fprintf(w, "    all %10d %9d %9d %9d %9d %9d %9d %9d %9d %9d\n",
		tot.TCUInstrs, tot.ALUOps, tot.FPUOps, tot.MDUOps, tot.MemOps,
		tot.BusyCycles, tot.MemWaitCycles, tot.FPUWaitCycles, tot.PSWaitCycles, tot.SendStallCycles)

	fmt.Fprintf(w, "== stall cycles by cause ==\n")
	fmt.Fprintf(w, "mem=%d fpu_mdu=%d ps=%d icn_send=%d master_mem=%d master_send=%d\n",
		tot.MemWaitCycles, tot.FPUWaitCycles, tot.PSWaitCycles, tot.SendStallCycles,
		c.MasterMemWaitCycles, c.MasterSendStalls)

	fmt.Fprintf(w, "== memory system ==\n")
	hits, misses := c.TotalCacheHits()
	fmt.Fprintf(w, "shared cache: hits=%d misses=%d psm=%d\n", hits, misses, c.PsmOps)
	fmt.Fprintf(w, "per module:")
	for i := range c.CacheHits {
		fmt.Fprintf(w, " %d:%d/%d", i, c.CacheHits[i], c.CacheMisses[i])
	}
	fmt.Fprintln(w)
	var qfull uint64
	for _, n := range c.CacheQueueFull {
		qfull += n
	}
	fmt.Fprintf(w, "service-queue full stalls: %d\n", qfull)
	c.CacheQueueDepth.Report(w, "service-queue depth")
	var dram uint64
	for _, d := range c.DRAMAccesses {
		dram += d
	}
	fmt.Fprintf(w, "dram: accesses=%d across %d ports\n", dram, len(c.DRAMAccesses))
	fmt.Fprintf(w, "icn: traversals=%d hops=%d\n", c.ICNTraversals, c.ICNHops)
	fmt.Fprintf(w, "prefetch: fills=%d hits=%d evicts=%d\n", c.PrefetchFills, c.PrefetchHits, c.PrefetchEvicts)
	fmt.Fprintf(w, "rocache: hits=%d misses=%d\n", c.ROHits, c.ROMisses)
	fmt.Fprintf(w, "master cache: hits=%d misses=%d\n", c.MasterCacheHits, c.MasterCacheMisses)
	c.LoadLatency.Report(w, "load latency (ticks)")

	fmt.Fprintf(w, "== prefix sum ==\n")
	fmt.Fprintf(w, "ps=%d psm=%d\n", c.PsOps, c.PsmOps)
	c.PSLatency.Report(w, "ps round trip (ticks)")

	fmt.Fprintf(w, "== spawn/join ==\n")
	fmt.Fprintf(w, "spawns=%d virtual_threads=%d spawn_overhead_cycles=%d join_overhead_cycles=%d\n",
		c.SpawnCount, c.VirtualThreads, c.SpawnOverheadCycles, c.JoinOverheadCycles)

	fmt.Fprintf(w, "== faults ==\n")
	fmt.Fprintf(w, "injected=%d mem=%d reg=%d icn_delay=%d icn_dup=%d icn_drop=%d cache_stall=%d tcu_fail=%d cluster_fail=%d\n",
		c.FaultsInjected(), c.MemFaults, c.RegFaults, c.ICNDelayFaults, c.ICNDupFaults,
		c.ICNDropFaults, c.CacheStallFaults, c.TCUFailFaults, c.ClusterFailFaults)
	fmt.Fprintf(w, "decommissioned_tcus=%d redispatches=%d\n", c.TCUsDecommissioned, c.Redispatches)
	c.RedispatchLatency.Report(w, "re-dispatch latency (ticks)")

	// The race-sanitizer section only appears when race checking ran: the
	// report must stay byte-identical to pre-sanitizer goldens otherwise.
	if c.RaceChecks > 0 {
		fmt.Fprintf(w, "== race sanitizer ==\n")
		fmt.Fprintf(w, "checks=%d reports=%d\n", c.RaceChecks, c.RaceReports)
	}
}
