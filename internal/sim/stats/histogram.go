package stats

import (
	"fmt"
	"io"
	"math/bits"
)

// Histogram is a fixed-shape power-of-two histogram for latency and depth
// observations. Bucket 0 counts zero values; bucket i>0 counts values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). The fixed layout keeps
// observation O(1), allocation-free and — because it is plain counting —
// bit-deterministic across host worker counts.
type Histogram struct {
	Buckets [65]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound of the p-th percentile (p in [0,100]):
// the upper edge of the bucket the percentile falls into.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	want := uint64(p / 100 * float64(h.Count))
	if want == 0 {
		want = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= want {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.Max
}

// Report writes the non-empty buckets on one line each, preceded by a
// summary line. Output is stable and byte-deterministic.
func (h *Histogram) Report(w io.Writer, label string) {
	fmt.Fprintf(w, "%s: count=%d mean=%.1f p50<=%d p99<=%d max=%d\n",
		label, h.Count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max)
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo, hi = uint64(1)<<uint(i-1), uint64(1)<<uint(i)-1
		}
		fmt.Fprintf(w, "  [%d..%d]: %d\n", lo, hi, n)
	}
}
