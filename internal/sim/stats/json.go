package stats

import (
	"encoding/json"
	"io"

	"xmtgo/internal/isa"
)

// SnapshotSchema versions the machine-readable counter snapshot. Bump it
// whenever a field is renamed, removed, or changes meaning; adding fields is
// backward compatible and does not require a bump.
const SnapshotSchema = "xmt-counters/v1"

// Snapshot is the stable machine-readable form of ReportCounters: the full
// hardware-counter state of one run (or of one point in a run), designed to
// be diffed across runs by cmd/xmtperf and embedded in interval telemetry.
// Field order is fixed by the struct, map keys are sorted by encoding/json,
// and every value derives from deterministic counters, so the marshaled
// bytes are identical for any host worker count.
type Snapshot struct {
	Schema string `json:"schema"`
	Cycle  int64  `json:"cycle"`
	Ticks  int64  `json:"ticks"`

	Instructions InstrSnapshot  `json:"instructions"`
	Clusters     []ClusterStats `json:"clusters"`
	Stalls       StallSnapshot  `json:"stalls"`
	Memory       MemorySnapshot `json:"memory"`
	PrefixSum    PSSnapshot     `json:"prefix_sum"`
	SpawnJoin    SpawnSnapshot  `json:"spawn_join"`
	Faults       FaultSnapshot  `json:"faults"`

	// Race is the xmtsan section, present only when race checking ran (so
	// race-off snapshots — including xmtperf baselines — are byte-unchanged).
	Race *RaceSnapshot `json:"race,omitempty"`
}

// InstrSnapshot is the instruction-counter section.
type InstrSnapshot struct {
	Total  uint64            `json:"total"`
	Master uint64            `json:"master"`
	TCU    uint64            `json:"tcu"`
	ByUnit map[string]uint64 `json:"by_unit"`
}

// StallSnapshot is the machine-wide stall-cycle breakdown by cause.
type StallSnapshot struct {
	Mem        uint64 `json:"mem"`
	FPUMDU     uint64 `json:"fpu_mdu"`
	PS         uint64 `json:"ps"`
	ICNSend    uint64 `json:"icn_send"`
	MasterMem  uint64 `json:"master_mem"`
	MasterSend uint64 `json:"master_send"`
}

// MemorySnapshot is the memory-system section.
type MemorySnapshot struct {
	CacheHits       uint64       `json:"cache_hits"`
	CacheMisses     uint64       `json:"cache_misses"`
	CachePsm        uint64       `json:"cache_psm"`
	PerModuleHits   []uint64     `json:"per_module_hits"`
	PerModuleMisses []uint64     `json:"per_module_misses"`
	QueueFull       uint64       `json:"queue_full"`
	QueueDepth      HistSnapshot `json:"queue_depth"`
	DRAMAccesses    []uint64     `json:"dram_accesses"`
	DRAMTotal       uint64       `json:"dram_total"`
	ICNTraversals   uint64       `json:"icn_traversals"`
	ICNHops         uint64       `json:"icn_hops"`
	PrefetchFills   uint64       `json:"prefetch_fills"`
	PrefetchHits    uint64       `json:"prefetch_hits"`
	PrefetchEvicts  uint64       `json:"prefetch_evicts"`
	ROHits          uint64       `json:"ro_hits"`
	ROMisses        uint64       `json:"ro_misses"`
	MasterCacheHits uint64       `json:"master_cache_hits"`
	MasterCacheMiss uint64       `json:"master_cache_misses"`
	LoadLatency     HistSnapshot `json:"load_latency"`
}

// PSSnapshot is the prefix-sum section.
type PSSnapshot struct {
	Ops     uint64       `json:"ops"`
	PsmOps  uint64       `json:"psm_ops"`
	Latency HistSnapshot `json:"latency"`
}

// SpawnSnapshot is the spawn/join section.
type SpawnSnapshot struct {
	Spawns         uint64 `json:"spawns"`
	VirtualThreads uint64 `json:"virtual_threads"`
	SpawnOverhead  uint64 `json:"spawn_overhead_cycles"`
	JoinOverhead   uint64 `json:"join_overhead_cycles"`
}

// FaultSnapshot is the fault-injection and resilience section.
type FaultSnapshot struct {
	Injected          uint64       `json:"injected"`
	Mem               uint64       `json:"mem"`
	Reg               uint64       `json:"reg"`
	ICNDelay          uint64       `json:"icn_delay"`
	ICNDup            uint64       `json:"icn_dup"`
	ICNDrop           uint64       `json:"icn_drop"`
	CacheStall        uint64       `json:"cache_stall"`
	TCUFail           uint64       `json:"tcu_fail"`
	ClusterFail       uint64       `json:"cluster_fail"`
	Decommissioned    uint64       `json:"decommissioned_tcus"`
	Redispatches      uint64       `json:"redispatches"`
	RedispatchLatency HistSnapshot `json:"redispatch_latency"`
}

// RaceSnapshot is the race-sanitizer section.
type RaceSnapshot struct {
	Checks  uint64 `json:"checks"`
	Reports uint64 `json:"reports"`
}

// HistSnapshot is the machine-readable form of a Histogram: the summary
// plus the non-empty power-of-two buckets as [lo, hi, count] triples.
type HistSnapshot struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Max     uint64      `json:"max"`
	P50     uint64      `json:"p50"`
	P99     uint64      `json:"p99"`
	Buckets [][3]uint64 `json:"buckets,omitempty"`
}

// SnapshotHist converts a Histogram into its stable JSON form.
func SnapshotHist(h *Histogram) HistSnapshot {
	out := HistSnapshot{Count: h.Count, Sum: h.Sum, Max: h.Max,
		P50: h.Percentile(50), P99: h.Percentile(99)}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo, hi = uint64(1)<<uint(i-1), uint64(1)<<uint(i)-1
		}
		out.Buckets = append(out.Buckets, [3]uint64{lo, hi, n})
	}
	return out
}

// Snapshot captures the collector's full state at the given cycle/tick into
// the stable schema. The caller supplies the time coordinates because the
// collector itself does not track them.
func (c *Collector) Snapshot(cycle, ticks int64) *Snapshot {
	s := &Snapshot{Schema: SnapshotSchema, Cycle: cycle, Ticks: ticks}

	s.Instructions = InstrSnapshot{
		Total: c.TotalInstrs(), Master: c.MasterInstrs, TCU: c.TCUInstrs,
		ByUnit: map[string]uint64{},
	}
	for u := 0; u < isa.NumUnits; u++ {
		if c.InstrByUnit[u] > 0 {
			s.Instructions.ByUnit[isa.Unit(u).String()] = c.InstrByUnit[u]
		}
	}

	s.Clusters = append([]ClusterStats(nil), c.Cluster...)
	var tot ClusterStats
	for i := range c.Cluster {
		cs := &c.Cluster[i]
		tot.MemWaitCycles += cs.MemWaitCycles
		tot.FPUWaitCycles += cs.FPUWaitCycles
		tot.PSWaitCycles += cs.PSWaitCycles
		tot.SendStallCycles += cs.SendStallCycles
	}
	s.Stalls = StallSnapshot{
		Mem: tot.MemWaitCycles, FPUMDU: tot.FPUWaitCycles, PS: tot.PSWaitCycles,
		ICNSend: tot.SendStallCycles, MasterMem: c.MasterMemWaitCycles,
		MasterSend: c.MasterSendStalls,
	}

	hits, misses := c.TotalCacheHits()
	var qfull uint64
	for _, n := range c.CacheQueueFull {
		qfull += n
	}
	var dram uint64
	for _, d := range c.DRAMAccesses {
		dram += d
	}
	s.Memory = MemorySnapshot{
		CacheHits: hits, CacheMisses: misses, CachePsm: c.PsmOps,
		PerModuleHits:   append([]uint64(nil), c.CacheHits...),
		PerModuleMisses: append([]uint64(nil), c.CacheMisses...),
		QueueFull:       qfull,
		QueueDepth:      SnapshotHist(&c.CacheQueueDepth),
		DRAMAccesses:    append([]uint64(nil), c.DRAMAccesses...),
		DRAMTotal:       dram,
		ICNTraversals:   c.ICNTraversals, ICNHops: c.ICNHops,
		PrefetchFills: c.PrefetchFills, PrefetchHits: c.PrefetchHits,
		PrefetchEvicts: c.PrefetchEvicts,
		ROHits:         c.ROHits, ROMisses: c.ROMisses,
		MasterCacheHits: c.MasterCacheHits, MasterCacheMiss: c.MasterCacheMisses,
		LoadLatency: SnapshotHist(&c.LoadLatency),
	}

	s.PrefixSum = PSSnapshot{Ops: c.PsOps, PsmOps: c.PsmOps, Latency: SnapshotHist(&c.PSLatency)}
	s.SpawnJoin = SpawnSnapshot{
		Spawns: c.SpawnCount, VirtualThreads: c.VirtualThreads,
		SpawnOverhead: c.SpawnOverheadCycles, JoinOverhead: c.JoinOverheadCycles,
	}
	s.Faults = FaultSnapshot{
		Injected: c.FaultsInjected(), Mem: c.MemFaults, Reg: c.RegFaults,
		ICNDelay: c.ICNDelayFaults, ICNDup: c.ICNDupFaults, ICNDrop: c.ICNDropFaults,
		CacheStall: c.CacheStallFaults, TCUFail: c.TCUFailFaults,
		ClusterFail: c.ClusterFailFaults, Decommissioned: c.TCUsDecommissioned,
		Redispatches: c.Redispatches, RedispatchLatency: SnapshotHist(&c.RedispatchLatency),
	}
	if c.RaceChecks > 0 {
		s.Race = &RaceSnapshot{Checks: c.RaceChecks, Reports: c.RaceReports}
	}
	return s
}

// WriteJSON marshals the snapshot with a fixed indentation and a trailing
// newline — the byte-deterministic `-counters-json` artifact.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
