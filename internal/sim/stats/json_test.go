package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func filledCollector() *Collector {
	c := NewCollector(2, 4, 2)
	c.MasterInstrs = 40
	c.TCUInstrs = 60
	c.InstrByUnit[0] = 100
	c.Cluster[0] = ClusterStats{TCUInstrs: 30, MemWaitCycles: 5, SendStallCycles: 2}
	c.Cluster[1] = ClusterStats{TCUInstrs: 30, FPUWaitCycles: 3, PSWaitCycles: 1}
	c.CacheHits[1] = 9
	c.CacheMisses[1] = 1
	c.CacheQueueFull[0] = 4
	c.DRAMAccesses[0] = 7
	c.ICNTraversals = 11
	c.ICNHops = 44
	c.PsOps = 5
	c.SpawnCount = 1
	c.VirtualThreads = 16
	c.MemFaults = 2
	c.TCUFailFaults = 1
	c.TCUsDecommissioned = 1
	c.LoadLatency.Observe(100)
	c.LoadLatency.Observe(300)
	c.PSLatency.Observe(8)
	return c
}

func TestSnapshotSchema(t *testing.T) {
	s := filledCollector().Snapshot(1234, 9872)
	if s.Schema != SnapshotSchema {
		t.Fatalf("schema %q", s.Schema)
	}
	if s.Cycle != 1234 || s.Ticks != 9872 {
		t.Fatalf("coords %d/%d", s.Cycle, s.Ticks)
	}
	if s.Instructions.Total != 100 || s.Instructions.Master != 40 {
		t.Errorf("instructions %+v", s.Instructions)
	}
	if s.Stalls.Mem != 5 || s.Stalls.FPUMDU != 3 || s.Stalls.PS != 1 || s.Stalls.ICNSend != 2 {
		t.Errorf("stalls %+v", s.Stalls)
	}
	if s.Memory.CacheHits != 9 || s.Memory.CacheMisses != 1 || s.Memory.DRAMTotal != 7 {
		t.Errorf("memory %+v", s.Memory)
	}
	if s.Memory.LoadLatency.Count != 2 || s.Memory.LoadLatency.Sum != 400 {
		t.Errorf("load latency %+v", s.Memory.LoadLatency)
	}
	if s.Faults.Injected != 3 || s.Faults.TCUFail != 1 || s.Faults.Decommissioned != 1 {
		t.Errorf("faults %+v", s.Faults)
	}
	if len(s.Clusters) != 2 || s.Clusters[0].TCUInstrs != 30 {
		t.Errorf("clusters %+v", s.Clusters)
	}
}

func TestSnapshotWriteJSONDeterministic(t *testing.T) {
	c := filledCollector()
	var a, b bytes.Buffer
	if err := c.Snapshot(10, 80).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(10, 80).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSON not deterministic")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Fatal("missing trailing newline")
	}
	// Round-trips as JSON and keeps the schema marker first-class.
	var m map[string]any
	if err := json.Unmarshal(a.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != SnapshotSchema {
		t.Fatalf("schema field = %v", m["schema"])
	}
}

func TestSnapshotHistBuckets(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	h.Observe(1000)
	hs := SnapshotHist(&h)
	if hs.Count != 4 || hs.Sum != 1005 || hs.Max != 1000 {
		t.Fatalf("summary %+v", hs)
	}
	var total uint64
	for _, b := range hs.Buckets {
		if b[0] > b[1] {
			t.Errorf("bucket lo %d > hi %d", b[0], b[1])
		}
		total += b[2]
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}
