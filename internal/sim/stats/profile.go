package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xmtgo/internal/asm"
)

// LineProfile is the sampling cycle profiler: it attributes simulated
// cycles to program counters as the cycle-accurate model issues and stalls,
// then folds them onto source lines (via the codegen line table each
// emitted instruction carries) and onto functions (via the program's text
// labels) for a flat + cumulative report (xmtrun -profile).
//
// Concurrency/determinism: attribution is sharded. Each cluster owns one
// ProfShard and updates it from its own compute phase or from deliveries of
// its own packages (both exclusive to that cluster); the master owns the
// last shard. Addition is commutative, so the merged totals are
// bit-identical for any host worker count.
type LineProfile struct {
	prog   *asm.Program
	src    []string // optional source text, 1-based via src[line-1]
	shards []ProfShard
}

// ProfShard is one shard of per-PC attribution.
type ProfShard struct {
	IssueCycles []uint64 // one per issued instruction at this PC
	StallCycles []uint64 // stall/wait cycles attributed to this PC
	Instrs      []uint64 // instructions issued at this PC
}

// NewLineProfile sizes a profiler for prog with the given shard count
// (typically clusters+1; the last shard is the master's).
func NewLineProfile(prog *asm.Program, shards int) *LineProfile {
	if shards < 1 {
		shards = 1
	}
	p := &LineProfile{prog: prog, shards: make([]ProfShard, shards)}
	n := len(prog.Text)
	for i := range p.shards {
		p.shards[i] = ProfShard{
			IssueCycles: make([]uint64, n),
			StallCycles: make([]uint64, n),
			Instrs:      make([]uint64, n),
		}
	}
	return p
}

// SetSource attaches the program's source text so the report can annotate
// hot lines (the XMTC source for compiled programs, the assembly for
// handwritten ones).
func (p *LineProfile) SetSource(src string) { p.src = strings.Split(src, "\n") }

// Shard returns shard i for the simulator to attach to a cluster (or the
// master, conventionally the last shard).
func (p *LineProfile) Shard(i int) *ProfShard { return &p.shards[i] }

// Issue records one issued instruction (one issue cycle) at pc.
func (s *ProfShard) Issue(pc int) {
	s.IssueCycles[pc]++
	s.Instrs[pc]++
}

// Stall attributes n stall or wait cycles to the instruction at pc.
func (s *ProfShard) Stall(pc int, n uint64) { s.StallCycles[pc] += n }

// pcCost is the merged attribution of one PC.
type pcCost struct {
	pc     int
	issue  uint64
	stall  uint64
	instrs uint64
}

func (p *LineProfile) merge() []pcCost {
	n := len(p.prog.Text)
	out := make([]pcCost, n)
	for pc := 0; pc < n; pc++ {
		out[pc].pc = pc
		for i := range p.shards {
			out[pc].issue += p.shards[i].IssueCycles[pc]
			out[pc].stall += p.shards[i].StallCycles[pc]
			out[pc].instrs += p.shards[i].Instrs[pc]
		}
	}
	return out
}

// funcTable returns the text labels sorted by instruction index, for
// mapping a PC to its enclosing function.
func (p *LineProfile) funcTable() (idx []int, names []string) {
	type fn struct {
		idx  int
		name string
	}
	var fns []fn
	for name, s := range p.prog.Syms {
		if s.Kind == asm.SymText {
			fns = append(fns, fn{int(s.Value), name})
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].idx != fns[j].idx {
			return fns[i].idx < fns[j].idx
		}
		return fns[i].name < fns[j].name
	})
	for _, f := range fns {
		idx = append(idx, f.idx)
		names = append(names, f.name)
	}
	return idx, names
}

func funcOf(idx []int, names []string, pc int) string {
	i := sort.SearchInts(idx, pc+1) - 1
	if i < 0 {
		return "<entry>"
	}
	return names[i]
}

// Report writes the flat (per source line) and cumulative (per function)
// cycle attribution, topN entries each (topN <= 0 means all). Output is
// byte-deterministic: ties break on line/function name.
func (p *LineProfile) Report(w io.Writer, topN int) {
	costs := p.merge()
	var total uint64
	for i := range costs {
		total += costs[i].issue + costs[i].stall
	}
	if total == 0 {
		fmt.Fprintln(w, "profile: no cycles attributed (did the simulation run?)")
		return
	}

	// Flat view: fold PCs onto source lines.
	type lineCost struct {
		line          int
		cycles, stall uint64
		instrs        uint64
	}
	byLine := map[int]*lineCost{}
	for i := range costs {
		c := &costs[i]
		if c.issue == 0 && c.stall == 0 {
			continue
		}
		line := p.prog.Text[c.pc].Line
		lc := byLine[line]
		if lc == nil {
			lc = &lineCost{line: line}
			byLine[line] = lc
		}
		lc.cycles += c.issue + c.stall
		lc.stall += c.stall
		lc.instrs += c.instrs
	}
	lines := make([]*lineCost, 0, len(byLine))
	for _, lc := range byLine {
		lines = append(lines, lc)
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].cycles != lines[j].cycles {
			return lines[i].cycles > lines[j].cycles
		}
		return lines[i].line < lines[j].line
	})
	if topN > 0 && len(lines) > topN {
		lines = lines[:topN]
	}
	fmt.Fprintf(w, "== cycle profile: flat (by source line) ==\n")
	fmt.Fprintf(w, "    cycles      %%   stall    instrs  line  source\n")
	var cum uint64
	for _, lc := range lines {
		cum += lc.cycles
		src := ""
		if lc.line >= 1 && lc.line <= len(p.src) {
			src = strings.TrimSpace(p.src[lc.line-1])
			if len(src) > 60 {
				src = src[:60]
			}
		}
		fmt.Fprintf(w, "%10d %6.2f %7d %9d %5d  %s\n",
			lc.cycles, 100*float64(lc.cycles)/float64(total), lc.stall, lc.instrs, lc.line, src)
	}

	// Cumulative view: fold PCs onto functions.
	idx, names := p.funcTable()
	type fnCost struct {
		name          string
		cycles, stall uint64
		instrs        uint64
	}
	byFn := map[string]*fnCost{}
	for i := range costs {
		c := &costs[i]
		if c.issue == 0 && c.stall == 0 {
			continue
		}
		name := funcOf(idx, names, c.pc)
		fc := byFn[name]
		if fc == nil {
			fc = &fnCost{name: name}
			byFn[name] = fc
		}
		fc.cycles += c.issue + c.stall
		fc.stall += c.stall
		fc.instrs += c.instrs
	}
	fns := make([]*fnCost, 0, len(byFn))
	for _, fc := range byFn {
		fns = append(fns, fc)
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].cycles != fns[j].cycles {
			return fns[i].cycles > fns[j].cycles
		}
		return fns[i].name < fns[j].name
	})
	if topN > 0 && len(fns) > topN {
		fns = fns[:topN]
	}
	fmt.Fprintf(w, "== cycle profile: cumulative (by function) ==\n")
	fmt.Fprintf(w, "    cycles      %%   stall    instrs  function\n")
	for _, fc := range fns {
		fmt.Fprintf(w, "%10d %6.2f %7d %9d  %s\n",
			fc.cycles, 100*float64(fc.cycles)/float64(total), fc.stall, fc.instrs, fc.name)
	}
}
