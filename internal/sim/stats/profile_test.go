package stats

import (
	"strings"
	"testing"

	"xmtgo/internal/asm"
)

// profProgram builds a tiny two-function program with a line table, the
// shape the profiler folds on: main at PC 0-1 (lines 1-2), f at PC 2-3
// (lines 3-4).
func profProgram(t *testing.T) *asm.Program {
	t.Helper()
	u, err := asm.Parse("p.s", `
	.text
main:	addiu $t0, $zero, 1
	sys 0
f:	addu $t1, $t0, $t0
	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestLineProfileShardsMergeCommutatively(t *testing.T) {
	prog := profProgram(t)
	p := NewLineProfile(prog, 3)
	// The same attribution split across shards in different orders must
	// produce one merged total — this is the worker-independence argument.
	p.Shard(0).Issue(0)
	p.Shard(2).Issue(0)
	p.Shard(1).Stall(0, 5)
	p.Shard(0).Issue(2)
	p.Shard(1).Issue(2)
	p.Shard(2).Stall(2, 7)

	costs := p.merge()
	if costs[0].issue != 2 || costs[0].stall != 5 || costs[0].instrs != 2 {
		t.Errorf("pc0 merged = %+v, want issue=2 stall=5 instrs=2", costs[0])
	}
	if costs[2].issue != 2 || costs[2].stall != 7 {
		t.Errorf("pc2 merged = %+v, want issue=2 stall=7", costs[2])
	}
}

func TestLineProfileReport(t *testing.T) {
	prog := profProgram(t)
	p := NewLineProfile(prog, 1)
	p.SetSource("line one\nline two\nline three\nline four")
	p.Shard(0).Issue(0)
	p.Shard(0).Stall(0, 9)
	p.Shard(0).Issue(2)

	var b strings.Builder
	p.Report(&b, 0)
	out := b.String()
	for _, want := range []string{
		"== cycle profile: flat (by source line) ==",
		"== cycle profile: cumulative (by function) ==",
		"main", "f",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// PC 0 (10 cycles) must rank above PC 2 (1 cycle) in both views.
	if strings.Index(out, "main") > strings.Index(out, "\nf") && strings.Contains(out, "\nf") {
		t.Errorf("cumulative view not sorted by cycles:\n%s", out)
	}
}

func TestLineProfileReportTopN(t *testing.T) {
	prog := profProgram(t)
	p := NewLineProfile(prog, 1)
	for pc := 0; pc < len(prog.Text); pc++ {
		p.Shard(0).Issue(pc)
	}
	var full, top strings.Builder
	p.Report(&full, 0)
	p.Report(&top, 1)
	if len(top.String()) >= len(full.String()) {
		t.Errorf("topN=1 report (%d bytes) not shorter than full report (%d bytes)",
			len(top.String()), len(full.String()))
	}
}

func TestLineProfileEmptyReport(t *testing.T) {
	p := NewLineProfile(profProgram(t), 1)
	var b strings.Builder
	p.Report(&b, 10)
	if !strings.Contains(b.String(), "no cycles attributed") {
		t.Errorf("empty profile report = %q", b.String())
	}
}

func TestFuncOfBeforeFirstLabel(t *testing.T) {
	if got := funcOf(nil, nil, 5); got != "<entry>" {
		t.Errorf("funcOf with no labels = %q, want <entry>", got)
	}
	idx, names := []int{4}, []string{"f"}
	if got := funcOf(idx, names, 2); got != "<entry>" {
		t.Errorf("funcOf before first label = %q, want <entry>", got)
	}
	if got := funcOf(idx, names, 4); got != "f" {
		t.Errorf("funcOf at label = %q, want f", got)
	}
}

func TestNewLineProfileMinimumOneShard(t *testing.T) {
	p := NewLineProfile(profProgram(t), 0)
	if len(p.shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(p.shards))
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile must be 0")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if got := h.Percentile(1); got != 0 {
		t.Errorf("p1 = %d, want 0 (zero bucket)", got)
	}
	if got := h.Percentile(50); got != 1 {
		t.Errorf("p50 = %d, want 1 (upper edge of [1..1])", got)
	}
	if got := h.Percentile(60); got != 3 {
		t.Errorf("p60 = %d, want 3 (upper edge of [2..3])", got)
	}
	if got := h.Percentile(100); got != 127 {
		t.Errorf("p100 = %d, want 127 (upper edge of [64..127])", got)
	}
	if got, want := h.Mean(), float64(106)/5; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}

	var b strings.Builder
	h.Report(&b, "lat")
	if !strings.Contains(b.String(), "count=5") {
		t.Errorf("report = %q", b.String())
	}
}
