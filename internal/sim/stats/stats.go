// Package stats implements XMTSim's built-in counters (paper §III-B):
// instruction counters that record executed instructions by opcode and
// functional unit, and activity counters that monitor the state of the
// cycle-accurate components — memory wait time, cache hits and misses,
// interconnect traversals, DRAM accesses, prefetch-buffer behaviour,
// per-cluster utilization. Filter plug-ins customize the instruction
// statistics reported at the end of a simulation; the bundled
// HotLocations plug-in reproduces the paper's example of listing the most
// frequently accessed shared-memory locations.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xmtgo/internal/isa"
)

// ClusterStats are per-cluster activity counters. Each cluster updates only
// its own entry, so the fields are safe to bump from the parallel compute
// phase without going through the outbox. The JSON tags are part of the
// stable machine-readable counter schema (see json.go).
type ClusterStats struct {
	TCUInstrs       uint64 `json:"instrs"` // instructions committed by this cluster's TCUs
	ALUOps          uint64 `json:"alu"`
	FPUOps          uint64 `json:"fpu"`
	MDUOps          uint64 `json:"mdu"`
	MemOps          uint64 `json:"mem"`
	BusyCycles      uint64 `json:"busy_cycles"`       // cycles with at least one active TCU
	MemWaitCycles   uint64 `json:"mem_wait_cycles"`   // TCU-cycles spent blocked on memory
	FPUWaitCycles   uint64 `json:"fpu_wait_cycles"`   // TCU-cycles spent waiting for a shared FPU/MDU
	PSWaitCycles    uint64 `json:"ps_wait_cycles"`    // TCU-cycles spent blocked on the prefix-sum unit
	SendStallCycles uint64 `json:"send_stall_cycles"` // TCU-cycles the ICN injection port refused a send
}

// Collector accumulates all counters of one simulation run. The simulator
// is single-goroutine, so plain integers suffice.
type Collector struct {
	// Instruction counters.
	InstrByOp    [isa.NumOps]uint64
	InstrByUnit  [isa.NumUnits]uint64
	MasterInstrs uint64
	TCUInstrs    uint64

	// Activity counters.
	Cluster []ClusterStats

	CacheHits      []uint64 // per cache module
	CacheMisses    []uint64
	CachePsm       []uint64
	CacheQueueFull []uint64 // accept stalls due to a full service queue

	DRAMAccesses []uint64 // per port

	ICNTraversals uint64
	ICNHops       uint64

	PsOps  uint64
	PsmOps uint64

	SpawnCount     uint64
	VirtualThreads uint64

	PrefetchFills  uint64
	PrefetchHits   uint64
	PrefetchEvicts uint64

	ROHits   uint64
	ROMisses uint64

	MasterCacheHits   uint64
	MasterCacheMisses uint64

	LoadLatencySum   uint64 // ticks, issue -> commit
	LoadLatencyCount uint64

	// Hardware performance counters (docs/OBSERVABILITY.md). All are
	// updated either on the scheduler goroutine or cluster-locally, so
	// they are bit-identical for any host worker count.
	LoadLatency     Histogram // ticks, issue -> commit, per load/psm
	PSLatency       Histogram // ticks, ps request -> response delivered
	CacheQueueDepth Histogram // service-queue depth per serving cache tick

	SpawnOverheadCycles uint64 // master cycles spent broadcasting spawns
	JoinOverheadCycles  uint64 // master cycles spent completing joins
	MasterMemWaitCycles uint64 // master cycles blocked on memory
	MasterSendStalls    uint64 // master sends refused by the injection port

	// Fault injection and resilience (docs/ROBUSTNESS.md). All updated on
	// the scheduler goroutine (fault events and outbox commits), so they
	// are bit-identical for any host worker count.
	MemFaults          uint64 // transient memory bit-flips applied
	RegFaults          uint64 // transient register bit-flips applied
	ICNDelayFaults     uint64 // ICN package delays applied
	ICNDupFaults       uint64 // ICN package duplications applied
	ICNDropFaults      uint64 // ICN package drops (retransmissions) applied
	CacheStallFaults   uint64 // cache-module stalls applied
	TCUFailFaults      uint64 // permanent TCU failures injected
	ClusterFailFaults  uint64 // permanent cluster failures injected
	TCUsDecommissioned uint64 // TCUs gracefully decommissioned
	Redispatches       uint64 // orphaned virtual threads re-dispatched

	// RedispatchLatency measures ticks from a TCU's decommission to its
	// orphaned virtual thread resuming on a surviving TCU.
	RedispatchLatency Histogram

	// Race sanitizer counters (xmtsan, docs/ANALYZER.md). Both stay zero when
	// race checking is off, and the race section of the counter report and
	// JSON snapshot is omitted entirely then, so race-off artifacts remain
	// byte-identical with and without the feature compiled in. Updated on the
	// scheduler goroutine only.
	RaceChecks  uint64 // shadow word-access checks performed
	RaceReports uint64 // confirmed races reported

	filters []Filter
}

// FaultsInjected sums every applied fault across kinds.
func (c *Collector) FaultsInjected() uint64 {
	return c.MemFaults + c.RegFaults + c.ICNDelayFaults + c.ICNDupFaults +
		c.ICNDropFaults + c.CacheStallFaults + c.TCUFailFaults + c.ClusterFailFaults
}

// NewCollector sizes a collector for the given machine shape.
func NewCollector(clusters, cacheModules, dramPorts int) *Collector {
	return &Collector{
		Cluster:        make([]ClusterStats, clusters),
		CacheHits:      make([]uint64, cacheModules),
		CacheMisses:    make([]uint64, cacheModules),
		CachePsm:       make([]uint64, cacheModules),
		CacheQueueFull: make([]uint64, cacheModules),
		DRAMAccesses:   make([]uint64, dramPorts),
	}
}

// CountInstr records one committed instruction.
func (c *Collector) CountInstr(op isa.Op, cluster int, master bool) {
	c.InstrByOp[op]++
	c.InstrByUnit[op.Meta().Unit]++
	if master {
		c.MasterInstrs++
	} else {
		c.TCUInstrs++
		if cluster >= 0 && cluster < len(c.Cluster) {
			cs := &c.Cluster[cluster]
			cs.TCUInstrs++
			switch op.Meta().Unit {
			case isa.UnitALU, isa.UnitSFT, isa.UnitBR:
				cs.ALUOps++
			case isa.UnitFPU:
				cs.FPUOps++
			case isa.UnitMDU:
				cs.MDUOps++
			case isa.UnitMEM:
				cs.MemOps++
			}
		}
	}
	for _, f := range c.filters {
		f.Instr(op, master)
	}
}

// CountInstrs records a batch of committed TCU instructions from one
// cluster. The parallel engine buffers counted opcodes as a flat op stream
// (one byte-sized op per issue instead of a full outbox record) and flushes
// them here at commit; semantics match calling CountInstr per op with
// master=false.
func (c *Collector) CountInstrs(ops []isa.Op, cluster int) {
	var cs *ClusterStats
	if cluster >= 0 && cluster < len(c.Cluster) {
		cs = &c.Cluster[cluster]
	}
	for _, op := range ops {
		unit := op.Meta().Unit
		c.InstrByOp[op]++
		c.InstrByUnit[unit]++
		c.TCUInstrs++
		if cs != nil {
			cs.TCUInstrs++
			switch unit {
			case isa.UnitALU, isa.UnitSFT, isa.UnitBR:
				cs.ALUOps++
			case isa.UnitFPU:
				cs.FPUOps++
			case isa.UnitMDU:
				cs.MDUOps++
			case isa.UnitMEM:
				cs.MemOps++
			}
		}
		for _, f := range c.filters {
			f.Instr(op, false)
		}
	}
}

// CountMem records one memory access observed at a cache module.
func (c *Collector) CountMem(addr uint32, op isa.Op, module int, hit bool) {
	if module >= 0 && module < len(c.CacheHits) {
		if hit {
			c.CacheHits[module]++
		} else {
			c.CacheMisses[module]++
		}
		if op == isa.OpPsm {
			c.CachePsm[module]++
		}
	}
	for _, f := range c.filters {
		f.Mem(addr, op, module, hit)
	}
}

// TotalInstrs returns all committed instructions.
func (c *Collector) TotalInstrs() uint64 { return c.MasterInstrs + c.TCUInstrs }

// TotalCacheHits sums over modules.
func (c *Collector) TotalCacheHits() (hits, misses uint64) {
	for i := range c.CacheHits {
		hits += c.CacheHits[i]
		misses += c.CacheMisses[i]
	}
	return
}

// AddFilter registers an instruction-statistics filter plug-in.
func (c *Collector) AddFilter(f Filter) { c.filters = append(c.filters, f) }

// Filters returns the registered filter plug-ins.
func (c *Collector) Filters() []Filter { return c.filters }

// Filter is the external filter plug-in interface of Fig. 3: it observes
// the instruction stream and memory traffic during simulation and
// customizes the statistics reported at the end.
type Filter interface {
	Name() string
	// Instr observes one committed instruction.
	Instr(op isa.Op, master bool)
	// Mem observes one memory access served at a cache module.
	Mem(addr uint32, op isa.Op, module int, hit bool)
	// Report writes the plug-in's end-of-simulation statistics.
	Report(w io.Writer)
}

// Report writes the standard end-of-run statistics, then each filter's.
func (c *Collector) Report(w io.Writer) {
	fmt.Fprintf(w, "instructions: total=%d master=%d tcu=%d\n", c.TotalInstrs(), c.MasterInstrs, c.TCUInstrs)
	fmt.Fprintf(w, "by unit:")
	for u := 0; u < isa.NumUnits; u++ {
		if c.InstrByUnit[u] > 0 {
			fmt.Fprintf(w, " %s=%d", isa.Unit(u), c.InstrByUnit[u])
		}
	}
	fmt.Fprintln(w)
	hits, misses := c.TotalCacheHits()
	fmt.Fprintf(w, "shared cache: hits=%d misses=%d psm=%d\n", hits, misses, c.PsmOps)
	fmt.Fprintf(w, "icn: traversals=%d hops=%d\n", c.ICNTraversals, c.ICNHops)
	var dram uint64
	for _, d := range c.DRAMAccesses {
		dram += d
	}
	fmt.Fprintf(w, "dram: accesses=%d across %d ports\n", dram, len(c.DRAMAccesses))
	fmt.Fprintf(w, "spawns=%d virtual_threads=%d ps=%d\n", c.SpawnCount, c.VirtualThreads, c.PsOps)
	fmt.Fprintf(w, "prefetch: fills=%d hits=%d evicts=%d\n", c.PrefetchFills, c.PrefetchHits, c.PrefetchEvicts)
	fmt.Fprintf(w, "rocache: hits=%d misses=%d\n", c.ROHits, c.ROMisses)
	fmt.Fprintf(w, "master cache: hits=%d misses=%d\n", c.MasterCacheHits, c.MasterCacheMisses)
	if c.LoadLatencyCount > 0 {
		fmt.Fprintf(w, "avg load latency: %.1f ticks over %d loads\n",
			float64(c.LoadLatencySum)/float64(c.LoadLatencyCount), c.LoadLatencyCount)
	}
	for _, f := range c.filters {
		fmt.Fprintf(w, "--- filter %s ---\n", f.Name())
		f.Report(w)
	}
}

// HotLocations is the default filter plug-in of the paper's example: it
// creates a list of the most frequently accessed locations in the XMT
// shared memory space, which helps a programmer find the assembly lines
// causing memory bottlenecks.
type HotLocations struct {
	// Granularity in bytes (e.g. a cache line); accesses are bucketed.
	Granularity uint32
	TopN        int
	counts      map[uint32]uint64
}

// NewHotLocations creates the plug-in with line-granularity buckets.
func NewHotLocations(granularity uint32, topN int) *HotLocations {
	if granularity == 0 {
		granularity = 4
	}
	if topN <= 0 {
		topN = 10
	}
	return &HotLocations{Granularity: granularity, TopN: topN, counts: make(map[uint32]uint64)}
}

// Name implements Filter.
func (h *HotLocations) Name() string { return "hot-locations" }

// Instr implements Filter (instruction counts are not used here).
func (h *HotLocations) Instr(op isa.Op, master bool) {}

// Mem implements Filter.
func (h *HotLocations) Mem(addr uint32, op isa.Op, module int, hit bool) {
	h.counts[addr/h.Granularity*h.Granularity]++
}

// Top returns the most-accessed buckets.
func (h *HotLocations) Top() []struct {
	Addr  uint32
	Count uint64
} {
	type kv struct {
		Addr  uint32
		Count uint64
	}
	all := make([]kv, 0, len(h.counts))
	for a, n := range h.counts {
		all = append(all, kv{a, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Addr < all[j].Addr
	})
	if len(all) > h.TopN {
		all = all[:h.TopN]
	}
	out := make([]struct {
		Addr  uint32
		Count uint64
	}, len(all))
	for i, e := range all {
		out[i] = struct {
			Addr  uint32
			Count uint64
		}{e.Addr, e.Count}
	}
	return out
}

// Report implements Filter.
func (h *HotLocations) Report(w io.Writer) {
	for _, e := range h.Top() {
		fmt.Fprintf(w, "0x%08x: %d accesses\n", e.Addr, e.Count)
	}
}

// OpHistogram is a filter plug-in reporting the instruction mix.
type OpHistogram struct {
	counts [isa.NumOps]uint64
}

// Name implements Filter.
func (o *OpHistogram) Name() string { return "op-histogram" }

// Instr implements Filter.
func (o *OpHistogram) Instr(op isa.Op, master bool) { o.counts[op]++ }

// Mem implements Filter.
func (o *OpHistogram) Mem(addr uint32, op isa.Op, module int, hit bool) {}

// Count returns the count for one opcode.
func (o *OpHistogram) Count(op isa.Op) uint64 { return o.counts[op] }

// Report implements Filter.
func (o *OpHistogram) Report(w io.Writer) {
	type kv struct {
		op isa.Op
		n  uint64
	}
	var all []kv
	for op := 0; op < isa.NumOps; op++ {
		if o.counts[op] > 0 {
			all = append(all, kv{isa.Op(op), o.counts[op]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var parts []string
	for _, e := range all {
		parts = append(parts, fmt.Sprintf("%s=%d", e.op, e.n))
	}
	fmt.Fprintln(w, strings.Join(parts, " "))
}
