package stats

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo/internal/isa"
)

func TestInstrCounting(t *testing.T) {
	c := NewCollector(4, 8, 2)
	c.CountInstr(isa.OpAdd, 0, false)
	c.CountInstr(isa.OpAdd, 0, false)
	c.CountInstr(isa.OpMul, 1, false)
	c.CountInstr(isa.OpLw, 2, false)
	c.CountInstr(isa.OpAddS, 3, false)
	c.CountInstr(isa.OpJal, -1, true)
	if c.TotalInstrs() != 6 || c.MasterInstrs != 1 || c.TCUInstrs != 5 {
		t.Fatalf("totals wrong: %d/%d/%d", c.TotalInstrs(), c.MasterInstrs, c.TCUInstrs)
	}
	if c.InstrByOp[isa.OpAdd] != 2 {
		t.Fatal("per-op count wrong")
	}
	if c.InstrByUnit[isa.UnitALU] != 2 || c.InstrByUnit[isa.UnitMDU] != 1 {
		t.Fatal("per-unit count wrong")
	}
	if c.Cluster[0].ALUOps != 2 || c.Cluster[1].MDUOps != 1 ||
		c.Cluster[2].MemOps != 1 || c.Cluster[3].FPUOps != 1 {
		t.Fatal("per-cluster counts wrong")
	}
}

func TestMemCounting(t *testing.T) {
	c := NewCollector(1, 4, 1)
	c.CountMem(0x100, isa.OpLw, 2, true)
	c.CountMem(0x104, isa.OpLw, 2, false)
	c.CountMem(0x108, isa.OpPsm, 3, true)
	hits, misses := c.TotalCacheHits()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if c.CachePsm[3] != 1 {
		t.Fatal("psm count wrong")
	}
}

func TestHotLocationsFilter(t *testing.T) {
	h := NewHotLocations(32, 3)
	c := NewCollector(1, 1, 1)
	c.AddFilter(h)
	for i := 0; i < 10; i++ {
		c.CountMem(0x1000, isa.OpLw, 0, true) // bucket 0x1000 ×10
	}
	for i := 0; i < 5; i++ {
		c.CountMem(0x2004, isa.OpSw, 0, true) // bucket 0x2000 ×5
	}
	c.CountMem(0x3000, isa.OpLw, 0, false)
	top := h.Top()
	if len(top) != 3 {
		t.Fatalf("top has %d entries", len(top))
	}
	if top[0].Addr != 0x1000 || top[0].Count != 10 {
		t.Fatalf("hottest = %+v", top[0])
	}
	if top[1].Addr != 0x2000 || top[1].Count != 5 {
		t.Fatalf("second = %+v", top[1])
	}
	var buf bytes.Buffer
	h.Report(&buf)
	if !strings.Contains(buf.String(), "0x00001000: 10 accesses") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

func TestOpHistogramFilter(t *testing.T) {
	h := &OpHistogram{}
	c := NewCollector(1, 1, 1)
	c.AddFilter(h)
	for i := 0; i < 7; i++ {
		c.CountInstr(isa.OpAddiu, 0, false)
	}
	c.CountInstr(isa.OpSys, -1, true)
	if h.Count(isa.OpAddiu) != 7 {
		t.Fatal("histogram count wrong")
	}
	var buf bytes.Buffer
	h.Report(&buf)
	if !strings.Contains(buf.String(), "addiu=7") {
		t.Fatalf("report: %s", buf.String())
	}
}

func TestReport(t *testing.T) {
	c := NewCollector(2, 2, 1)
	c.CountInstr(isa.OpAdd, 0, false)
	c.SpawnCount = 3
	c.VirtualThreads = 100
	c.PrefetchHits = 5
	c.LoadLatencySum = 640
	c.LoadLatencyCount = 8
	var buf bytes.Buffer
	c.Report(&buf)
	out := buf.String()
	for _, want := range []string{"spawns=3", "virtual_threads=100", "hits=5", "avg load latency: 80.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
