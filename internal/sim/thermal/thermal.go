// Package thermal is the pure-Go substitute for the HotSpot thermal model
// XMTSim drives through JNI (paper §III-F): a lumped RC grid over the chip
// floorplan. Each cell (one cluster, or an uncore cell) has a heat
// capacity, lateral thermal resistances to its grid neighbours, and a
// vertical resistance to the ambient/heat-sink node; temperatures advance
// by forward-Euler integration of the injected power. The substitution
// preserves what the paper's feature is for — closing the activity → power
// → temperature → DVFS loop inside an activity plug-in — with the same
// qualitative dynamics (hot clusters heat their neighbours; gating or
// slowing a domain cools it).
package thermal

import "fmt"

// Params configure the RC grid.
type Params struct {
	Ambient   float64 // °C
	CellCap   float64 // J/K per cell
	RLateral  float64 // K/W between adjacent cells
	RVertical float64 // K/W from a cell to ambient through the sink
}

// DefaultParams are tuned for simulation-scale experiments: real silicon
// thermal time constants are milliseconds, but cycle-accurate runs cover
// microseconds, so the default heat capacity is compressed to keep the
// power→temperature→DVFS feedback loop observable within feasible
// simulation lengths (the same compromise architectural thermal studies
// make when driving HotSpot from short sampled traces).
func DefaultParams() Params {
	return Params{Ambient: 45, CellCap: 2e-6, RLateral: 40, RVertical: 80}
}

// Grid is the RC thermal grid.
type Grid struct {
	W, H int
	P    Params
	T    []float64 // temperatures, row-major
}

// NewGrid creates a W×H grid at ambient temperature.
func NewGrid(w, h int, p Params) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("thermal: invalid grid %dx%d", w, h)
	}
	if p.CellCap <= 0 || p.RLateral <= 0 || p.RVertical <= 0 {
		return nil, fmt.Errorf("thermal: non-positive RC parameters")
	}
	g := &Grid{W: w, H: h, P: p, T: make([]float64, w*h)}
	for i := range g.T {
		g.T[i] = p.Ambient
	}
	return g, nil
}

// Step advances the grid by dt seconds with the given per-cell power
// injection (watts; len must equal W*H). It subdivides dt internally to
// keep the explicit integration stable.
func (g *Grid) Step(power []float64, dt float64) error {
	if len(power) != g.W*g.H {
		return fmt.Errorf("thermal: power vector has %d cells, grid has %d", len(power), g.W*g.H)
	}
	if dt <= 0 {
		return nil
	}
	// Stability: dt_sub < C * R_parallel; use a conservative bound.
	rMin := g.P.RVertical
	if g.P.RLateral/4 < rMin {
		rMin = g.P.RLateral / 4
	}
	maxStep := 0.2 * g.P.CellCap * rMin
	steps := int(dt/maxStep) + 1
	sub := dt / float64(steps)

	next := make([]float64, len(g.T))
	for s := 0; s < steps; s++ {
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				t := g.T[i]
				flow := power[i] // watts in
				flow += (g.P.Ambient - t) / g.P.RVertical
				if x > 0 {
					flow += (g.T[i-1] - t) / g.P.RLateral
				}
				if x < g.W-1 {
					flow += (g.T[i+1] - t) / g.P.RLateral
				}
				if y > 0 {
					flow += (g.T[i-g.W] - t) / g.P.RLateral
				}
				if y < g.H-1 {
					flow += (g.T[i+g.W] - t) / g.P.RLateral
				}
				next[i] = t + sub*flow/g.P.CellCap
			}
		}
		copy(g.T, next)
	}
	return nil
}

// Max returns the hottest cell temperature.
func (g *Grid) Max() float64 {
	max := g.T[0]
	for _, t := range g.T[1:] {
		if t > max {
			max = t
		}
	}
	return max
}

// Mean returns the average temperature.
func (g *Grid) Mean() float64 {
	var sum float64
	for _, t := range g.T {
		sum += t
	}
	return sum / float64(len(g.T))
}

// SteadyState returns the analytic steady-state temperature of an isolated
// cell under constant power (useful for calibration tests).
func (p Params) SteadyState(watts float64) float64 {
	return p.Ambient + watts*p.RVertical
}
