package thermal

import (
	"math"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4, DefaultParams()); err == nil {
		t.Error("zero width must fail")
	}
	bad := DefaultParams()
	bad.CellCap = 0
	if _, err := NewGrid(2, 2, bad); err == nil {
		t.Error("zero capacitance must fail")
	}
}

func TestStartsAtAmbient(t *testing.T) {
	g, err := NewGrid(3, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if g.Max() != DefaultParams().Ambient || g.Mean() != DefaultParams().Ambient {
		t.Fatal("grid must start at ambient")
	}
}

// TestSteadyState: a uniformly heated grid converges to the analytic
// steady state (no lateral flow when all cells are equal).
func TestSteadyState(t *testing.T) {
	p := DefaultParams()
	g, _ := NewGrid(4, 4, p)
	power := make([]float64, 16)
	for i := range power {
		power[i] = 0.25
	}
	for i := 0; i < 10000; i++ {
		if err := g.Step(power, 1e-5); err != nil {
			t.Fatal(err)
		}
	}
	want := p.SteadyState(0.25)
	if math.Abs(g.Max()-want) > 0.1 || math.Abs(g.Mean()-want) > 0.1 {
		t.Fatalf("steady state %.2f/%.2f, want %.2f", g.Max(), g.Mean(), want)
	}
}

// TestLateralSpreading: a single hot cell heats its neighbours, and the
// hot cell stays hottest (the floorplan-visualization property).
func TestLateralSpreading(t *testing.T) {
	g, _ := NewGrid(3, 3, DefaultParams())
	power := make([]float64, 9)
	power[4] = 1.0 // center
	for i := 0; i < 2000; i++ {
		if err := g.Step(power, 1e-5); err != nil {
			t.Fatal(err)
		}
	}
	center := g.T[4]
	edge := g.T[0]
	amb := DefaultParams().Ambient
	if center <= edge {
		t.Fatalf("center %.2f must exceed corner %.2f", center, edge)
	}
	if edge <= amb+0.01 {
		t.Fatalf("corner %.2f should warm above ambient %.2f (lateral flow)", edge, amb)
	}
}

func TestCoolingAfterPowerOff(t *testing.T) {
	g, _ := NewGrid(2, 2, DefaultParams())
	hot := []float64{1, 1, 1, 1}
	for i := 0; i < 2000; i++ {
		g.Step(hot, 1e-5)
	}
	peak := g.Max()
	off := []float64{0, 0, 0, 0}
	for i := 0; i < 5000; i++ {
		g.Step(off, 1e-5)
	}
	if g.Max() >= peak {
		t.Fatal("grid must cool when power is removed")
	}
	if g.Max() < DefaultParams().Ambient-0.01 {
		t.Fatal("grid must not cool below ambient")
	}
}

func TestStepValidation(t *testing.T) {
	g, _ := NewGrid(2, 2, DefaultParams())
	if err := g.Step([]float64{1, 2}, 1e-5); err == nil {
		t.Error("wrong power vector length must fail")
	}
	if err := g.Step([]float64{0, 0, 0, 0}, 0); err != nil {
		t.Error("zero dt is a no-op, not an error")
	}
}

// TestStabilityLargeStep: a large dt is internally subdivided; the result
// stays bounded (no explicit-integration blow-up).
func TestStabilityLargeStep(t *testing.T) {
	g, _ := NewGrid(3, 3, DefaultParams())
	power := make([]float64, 9)
	for i := range power {
		power[i] = 0.5
	}
	if err := g.Step(power, 0.5); err != nil {
		t.Fatal(err)
	}
	max := g.Max()
	want := DefaultParams().SteadyState(0.5)
	if math.IsNaN(max) || max < DefaultParams().Ambient || max > want+50 {
		t.Fatalf("integration unstable: max=%f (steady state %f)", max, want)
	}
}
