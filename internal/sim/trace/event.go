package trace

import (
	"fmt"
	"io"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
)

// This file implements the structured event tracer: a low-overhead stream
// of typed, timestamped events the cycle-accurate simulator emits while it
// runs, exported as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing (docs/OBSERVABILITY.md).
//
// Determinism contract: events produced inside the parallel cluster compute
// phase go into per-cluster Rings and are drained into the shared EventLog
// at outbox-commit time, in cluster-id order — the same serialization point
// the outbox uses for every other shared effect. Events produced on the
// scheduler goroutine (master issue, package deliveries, spawn/join, cache
// service) append directly. Either way the final event order is a pure
// function of the simulated execution, so the exported JSON is bit-identical
// for any Config.HostWorkers.

// EventKind is the type of one structured trace event.
type EventKind uint8

const (
	// EvInstr is one issued instruction (a span of one issue cycle).
	EvInstr EventKind = iota
	// EvMemWait is a span a context spent blocked on the memory system.
	EvMemWait
	// EvPSWait is a span a context spent blocked on the prefix-sum unit.
	EvPSWait
	// EvSpawn is a spawn section: broadcast to join completion, on the
	// master track. Arg is the number of virtual threads.
	EvSpawn
	// EvQueueDepth samples a cache module's service-queue depth (counter
	// event; Ctx is the module, Arg the depth).
	EvQueueDepth
	// EvFault is one injected fault (instant event; Arg is the
	// fault.Kind, Ctx the target TCU or -1).
	EvFault
	// EvDecommission marks a TCU's permanent removal (instant event on the
	// TCU's track).
	EvDecommission
	// EvRedispatch marks an orphaned virtual thread resuming on a
	// surviving TCU (instant event on the adopter's track; Arg is the
	// re-dispatch latency in ticks).
	EvRedispatch
	// EvRace marks one confirmed xmtsan race report (instant event on the
	// writer's track; Ctx is the writing TCU, PC the write's source line,
	// Arg the conflicting access's source line).
	EvRace
)

// String returns the Perfetto-visible name of the kind.
func (k EventKind) String() string {
	switch k {
	case EvInstr:
		return "instr"
	case EvMemWait:
		return "mem-wait"
	case EvPSWait:
		return "ps-wait"
	case EvSpawn:
		return "spawn"
	case EvQueueDepth:
		return "cacheq"
	case EvFault:
		return "fault"
	case EvDecommission:
		return "decommission"
	case EvRedispatch:
		return "redispatch"
	case EvRace:
		return "race"
	}
	return "?"
}

// Event is one structured trace event. The struct is deliberately flat and
// small: rings hold thousands of these per tick.
type Event struct {
	TS   engine.Time
	Dur  engine.Time
	Kind EventKind
	Op   isa.Op
	Ctx  int32 // global TCU id; -1 = master; EvQueueDepth: cache module
	PC   int32
	Arg  int64 // EvInstr: source line; EvSpawn: vthreads; EvQueueDepth: depth
}

// Ring is a bounded per-cluster event buffer filled during the parallel
// compute phase and drained at outbox commit. On overflow the newest events
// are dropped (and counted): dropping deterministically beats blocking the
// compute phase, and the drop count makes truncation visible.
type Ring struct {
	buf     []Event
	dropped uint64
}

// NewRing returns a ring holding up to capacity events between drains.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends one event; when the ring is full the event is dropped and
// counted.
func (r *Ring) Emit(e Event) {
	if len(r.buf) == cap(r.buf) {
		r.dropped++
		return
	}
	r.buf = append(r.buf, e)
}

// Len returns the buffered event count.
func (r *Ring) Len() int { return len(r.buf) }

// Cap returns the ring's capacity (events held between drains).
func (r *Ring) Cap() int { return cap(r.buf) }

// Truncate discards every event past index n (optimistic-rollback support:
// a cluster that overran its lookahead window rewinds its ring to the
// window-entry length).
func (r *Ring) Truncate(n int) {
	if n < len(r.buf) {
		r.buf = r.buf[:n]
	}
}

// EventLog collects the deterministic, committed event stream of one run.
type EventLog struct {
	Events  []Event
	Dropped uint64
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Emit appends one event directly (serial contexts only: master issue,
// deliveries, spawn unit, cache service — anything on the scheduler
// goroutine).
func (l *EventLog) Emit(e Event) { l.Events = append(l.Events, e) }

// Drain moves a ring's events into the log and resets the ring. Called at
// outbox commit, serially, in cluster-id order.
func (l *EventLog) Drain(r *Ring) {
	l.Events = append(l.Events, r.buf...)
	l.Dropped += r.dropped
	r.buf = r.buf[:0]
	r.dropped = 0
}

// DrainRange appends the ring's events in [lo, hi) to the log without
// resetting the ring. The bounded-lookahead engine drains one window
// cycle's segment at a time (in (cycle, cluster) order) and resets the
// ring once per window via ResetRing.
func (l *EventLog) DrainRange(r *Ring, lo, hi int) {
	l.Events = append(l.Events, r.buf[lo:hi]...)
}

// ResetRing clears a fully drained ring, folding its overflow-drop count
// into the log.
func (l *EventLog) ResetRing(r *Ring) {
	l.Dropped += r.dropped
	r.buf = r.buf[:0]
	r.dropped = 0
}

// ChromeMeta maps machine shape onto Chrome trace pids/tids.
type ChromeMeta struct {
	Clusters       int
	TCUsPerCluster int
}

// pidTid maps a context id to a Chrome (pid, tid) pair: the master is
// pid 0 / tid 0, cluster c is pid c+1 with one tid per member TCU.
func (m ChromeMeta) pidTid(ctx int32) (int, int) {
	if ctx < 0 || m.TCUsPerCluster <= 0 {
		return 0, 0
	}
	return int(ctx)/m.TCUsPerCluster + 1, int(ctx) % m.TCUsPerCluster
}

// WriteChrome renders the log as Chrome trace-event JSON ("traceEvents"
// array format). Timestamps are simulator ticks interpreted as
// microseconds; durations likewise. The output is byte-deterministic:
// events are written in log order with fixed formatting, so traces from
// different host worker counts compare equal byte-for-byte.
func (l *EventLog) WriteChrome(w io.Writer, meta ChromeMeta) error {
	bw := newErrWriter(w)
	bw.printf("{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf(format, args...)
	}

	// Metadata: name the master and cluster tracks.
	emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"master+memory"}}`)
	emit(`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"master-tcu"}}`)
	for c := 0; c < meta.Clusters; c++ {
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"cluster %d"}}`, c+1, c)
		for t := 0; t < meta.TCUsPerCluster; t++ {
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"tcu %d"}}`,
				c+1, t, c*meta.TCUsPerCluster+t)
		}
	}

	for i := range l.Events {
		e := &l.Events[i]
		switch e.Kind {
		case EvQueueDepth:
			emit(`{"name":"cacheq%d","ph":"C","ts":%d,"pid":0,"args":{"depth":%d}}`,
				e.Ctx, e.TS, e.Arg)
		case EvInstr:
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"%s","cat":"instr","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"pc":%d,"line":%d}}`,
				e.Op.Meta().Name, e.TS, e.Dur, pid, tid, e.PC, e.Arg)
		case EvSpawn:
			emit(`{"name":"spawn","cat":"spawn","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":0,"args":{"vthreads":%d}}`,
				e.TS, e.Dur, e.Arg)
		case EvFault:
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"fault","cat":"fault","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"g","args":{"kind":%d}}`,
				e.TS, pid, tid, e.Arg)
		case EvDecommission:
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"decommission","cat":"fault","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"p","args":{"tcu":%d}}`,
				e.TS, pid, tid, e.Ctx)
		case EvRedispatch:
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"redispatch","cat":"fault","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"latency":%d}}`,
				e.TS, pid, tid, e.Arg)
		case EvRace:
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"race","cat":"race","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"g","args":{"write_line":%d,"other_line":%d}}`,
				e.TS, pid, tid, e.PC, e.Arg)
		default: // wait spans
			pid, tid := meta.pidTid(e.Ctx)
			emit(`{"name":"%s","cat":"wait","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"pc":%d,"op":"%s"}}`,
				e.Kind, e.TS, e.Dur, pid, tid, e.PC, e.Op.Meta().Name)
		}
	}
	bw.printf("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}\n", l.Dropped)
	return bw.err
}

// errWriter folds the repetitive error handling of sequential writes.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
