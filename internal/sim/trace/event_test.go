package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"xmtgo/internal/isa"
)

func TestRingDropsNewestOnOverflow(t *testing.T) {
	r := NewRing(2)
	r.Emit(Event{PC: 1})
	r.Emit(Event{PC: 2})
	r.Emit(Event{PC: 3}) // full: dropped, counted
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	l := NewEventLog()
	l.Drain(r)
	if len(l.Events) != 2 || l.Events[0].PC != 1 || l.Events[1].PC != 2 {
		t.Errorf("drained events = %+v, want PCs 1,2 (drop-newest)", l.Events)
	}
	if l.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", l.Dropped)
	}
	// Drain resets the ring: it can fill to capacity again.
	if r.Len() != 0 {
		t.Fatalf("ring not reset by drain: Len = %d", r.Len())
	}
	r.Emit(Event{PC: 4})
	l.Drain(r)
	if len(l.Events) != 3 || l.Dropped != 1 {
		t.Errorf("after refill: events=%d dropped=%d, want 3 and 1", len(l.Events), l.Dropped)
	}
}

func TestNewRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if cap(r.buf) == 0 {
		t.Fatal("NewRing(0) must pick a non-zero default capacity")
	}
}

func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EvInstr: "instr", EvMemWait: "mem-wait", EvPSWait: "ps-wait",
		EvSpawn: "spawn", EvQueueDepth: "cacheq", EventKind(99): "?",
	} {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

func TestPidTid(t *testing.T) {
	m := ChromeMeta{Clusters: 4, TCUsPerCluster: 8}
	for _, tc := range []struct {
		ctx      int32
		pid, tid int
	}{
		{-1, 0, 0}, // master
		{0, 1, 0},  // cluster 0, tcu 0
		{7, 1, 7},  // cluster 0, last tcu
		{8, 2, 0},  // cluster 1, tcu 0
		{31, 4, 7}, // last cluster, last tcu
	} {
		if pid, tid := m.pidTid(tc.ctx); pid != tc.pid || tid != tc.tid {
			t.Errorf("pidTid(%d) = (%d,%d), want (%d,%d)", tc.ctx, pid, tid, tc.pid, tc.tid)
		}
	}
}

// TestWriteChromeValidJSON renders a hand-built log with one event of every
// kind and checks the output parses as JSON with the expected structure.
func TestWriteChromeValidJSON(t *testing.T) {
	l := NewEventLog()
	l.Emit(Event{TS: 10, Dur: 1, Kind: EvInstr, Op: isa.OpAddu, Ctx: 3, PC: 7, Arg: 12})
	l.Emit(Event{TS: 11, Dur: 4, Kind: EvMemWait, Op: isa.OpLw, Ctx: 3, PC: 8})
	l.Emit(Event{TS: 12, Dur: 2, Kind: EvPSWait, Op: isa.OpPs, Ctx: -1, PC: 9})
	l.Emit(Event{TS: 13, Dur: 20, Kind: EvSpawn, Ctx: -1, PC: 2, Arg: 64})
	l.Emit(Event{TS: 14, Kind: EvQueueDepth, Ctx: 5, Arg: 3})
	l.Dropped = 2

	var b bytes.Buffer
	if err := l.WriteChrome(&b, ChromeMeta{Clusters: 2, TCUsPerCluster: 2}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	// 1 process + 1 thread metadata entry for the master, (1 + 2) per
	// cluster, plus the 5 events.
	if want := 2 + 2*3 + 5; len(doc.TraceEvents) != want {
		t.Errorf("traceEvents count = %d, want %d", len(doc.TraceEvents), want)
	}
	if got := doc.OtherData["dropped"]; got != "2" {
		t.Errorf(`otherData.dropped = %v, want "2"`, got)
	}
	if !strings.Contains(b.String(), `"name":"mem-wait"`) {
		t.Error("mem-wait span missing from output")
	}
}

type failWriter struct{ n, failAt int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n >= f.failAt {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteChromePropagatesWriteError(t *testing.T) {
	l := NewEventLog()
	l.Emit(Event{Kind: EvInstr, Op: isa.OpAddu})
	if err := l.WriteChrome(&failWriter{failAt: 3}, ChromeMeta{Clusters: 1, TCUsPerCluster: 1}); err == nil {
		t.Fatal("WriteChrome must surface the writer's error")
	}
}
