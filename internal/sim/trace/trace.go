// Package trace implements XMTSim's execution traces (paper §III-E):
// functional-level traces show the executed instructions and their
// contexts; the more detailed cycle-accurate level also reports simulated
// time. Traces can be limited to specific instructions (by mnemonic) and/or
// to specific TCUs.
package trace

import (
	"fmt"
	"io"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
)

// Level selects trace detail.
type Level uint8

const (
	// LevelFunctional prints executed instructions only.
	LevelFunctional Level = iota
	// LevelCycle also prints simulated time (ticks) per instruction issue.
	LevelCycle
)

// Tracer filters and formats execution traces.
type Tracer struct {
	W     io.Writer
	Level Level

	// OnlyTCUs limits output to these contexts (-1 is the master); empty
	// means all.
	OnlyTCUs map[int]bool
	// OnlyOps limits output to these opcodes; empty means all.
	OnlyOps map[isa.Op]bool

	// Lines counts emitted trace lines.
	Lines uint64
}

// New creates a tracer writing to w.
func New(w io.Writer, level Level) *Tracer {
	return &Tracer{W: w, Level: level}
}

// LimitTCU restricts the trace to one context (-1 = master). It may be
// called repeatedly to add contexts.
func (t *Tracer) LimitTCU(id int) {
	if t.OnlyTCUs == nil {
		t.OnlyTCUs = make(map[int]bool)
	}
	t.OnlyTCUs[id] = true
}

// LimitOp restricts the trace to a mnemonic; it may be called repeatedly.
func (t *Tracer) LimitOp(name string) error {
	op, ok := isa.ByName[name]
	if !ok {
		return fmt.Errorf("trace: unknown mnemonic %q", name)
	}
	if t.OnlyOps == nil {
		t.OnlyOps = make(map[isa.Op]bool)
	}
	t.OnlyOps[op] = true
	return nil
}

func (t *Tracer) wants(tcu int, op isa.Op) bool {
	if t.OnlyTCUs != nil && !t.OnlyTCUs[tcu] {
		return false
	}
	if t.OnlyOps != nil && !t.OnlyOps[op] {
		return false
	}
	return true
}

// CycleHook adapts the tracer to cycle.System.SetTrace.
func (t *Tracer) CycleHook() func(tcu int, pc int, in isa.Instr, now engine.Time) {
	return func(tcu int, pc int, in isa.Instr, now engine.Time) {
		if !t.wants(tcu, in.Op) {
			return
		}
		t.Lines++
		who := "master"
		if tcu >= 0 {
			who = fmt.Sprintf("tcu%04d", tcu)
		}
		if t.Level == LevelCycle {
			fmt.Fprintf(t.W, "%12d %s @%05d  %s\n", now, who, pc, in)
		} else {
			fmt.Fprintf(t.W, "%s @%05d  %s\n", who, pc, in)
		}
	}
}

// FuncHook adapts the tracer to funcmodel.Machine.Trace.
func (t *Tracer) FuncHook() func(ctx *funcmodel.Context, in isa.Instr) {
	return func(ctx *funcmodel.Context, in isa.Instr) {
		if !t.wants(ctx.ID, in.Op) {
			return
		}
		t.Lines++
		who := "master"
		if !ctx.IsMaster {
			who = fmt.Sprintf("vtcu%03d", ctx.ID)
		}
		fmt.Fprintf(t.W, "%s @%05d  %s\n", who, ctx.PC-1, in)
	}
}
