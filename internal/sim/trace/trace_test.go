package trace

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/funcmodel"
)

func TestCycleTraceFormatting(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, LevelCycle)
	hook := tr.CycleHook()
	hook(-1, 3, isa.Instr{Op: isa.OpAddiu, Rd: 8, Rs: 0, Imm: 5}, 160)
	hook(12, 7, isa.Instr{Op: isa.OpLw, Rd: 9, Rs: 8, Imm: 4}, 200)
	out := buf.String()
	if !strings.Contains(out, "master") || !strings.Contains(out, "tcu0012") {
		t.Fatalf("missing contexts:\n%s", out)
	}
	if !strings.Contains(out, "addiu $t0, $zero, 5") || !strings.Contains(out, "160") {
		t.Fatalf("missing instruction or time:\n%s", out)
	}
	if tr.Lines != 2 {
		t.Fatalf("lines = %d", tr.Lines)
	}
}

func TestTCUFilter(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, LevelFunctional)
	tr.LimitTCU(5)
	hook := tr.CycleHook()
	hook(5, 0, isa.Instr{Op: isa.OpNop}, 0)
	hook(6, 0, isa.Instr{Op: isa.OpNop}, 0)
	hook(-1, 0, isa.Instr{Op: isa.OpNop}, 0)
	if tr.Lines != 1 {
		t.Fatalf("filter passed %d lines, want 1", tr.Lines)
	}
}

func TestOpFilter(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, LevelFunctional)
	if err := tr.LimitOp("ps"); err != nil {
		t.Fatal(err)
	}
	if err := tr.LimitOp("zzz"); err == nil {
		t.Fatal("unknown mnemonic must fail")
	}
	hook := tr.CycleHook()
	hook(0, 0, isa.Instr{Op: isa.OpPs, Rd: 8, G: 63}, 0)
	hook(0, 1, isa.Instr{Op: isa.OpAdd}, 0)
	if tr.Lines != 1 {
		t.Fatalf("op filter passed %d lines", tr.Lines)
	}
	if !strings.Contains(buf.String(), "ps $t0, g63") {
		t.Fatalf("trace: %s", buf.String())
	}
}

func TestFuncHook(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, LevelFunctional)
	hook := tr.FuncHook()
	ctx := &funcmodel.Context{ID: -1, IsMaster: true, PC: 4}
	hook(ctx, isa.Instr{Op: isa.OpSys, Imm: 0})
	ctx2 := &funcmodel.Context{ID: 0, PC: 9}
	hook(ctx2, isa.Instr{Op: isa.OpChkid, Rd: 26})
	out := buf.String()
	if !strings.Contains(out, "master @00003") || !strings.Contains(out, "vtcu000 @00008") {
		t.Fatalf("func trace:\n%s", out)
	}
}
