package workloads

import (
	"bytes"
	"fmt"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
)

// The memory-model litmus tests of the paper's Figs. 6 and 7. Two virtual
// threads run on different TCUs: thread A writes x then y; thread B reads
// y then x. The relaxed XMT memory model admits every (x, y) outcome —
// including (0, 1), which B can observe when its prefetch buffer holds a
// stale copy of x's line (exactly the hazard the paper points out:
// "prefetching could cause variable x to be read before y"). Synchronizing
// over y with prefix-sums (Fig. 7) restores the partial order: the
// compiler's fence-before-prefix-sum rule plus the buffer flush at
// prefix-sum completion make "y==1 implies x==1" hold.
//
// Timing is controlled by per-thread delay loops fed through a memory map,
// so sweeping the delays explores the interleaving space deterministically.

// LitmusRelaxed is the Fig. 6 program: no order-enforcing operations.
// Thread B prefetches x's line at thread start (as the compiler prefetch
// pass would), so its two reads can effectively reorder.
func LitmusRelaxed() string {
	return litmusCommon(`
        # Thread A: delay, then x = 1; y = 1 (non-blocking stores).
        lw    $t4, 0($t3)        # delayA
LAd:    blez  $t4, LAgo
        addiu $t4, $t4, -1
        j     LAd
LAgo:   addiu $t5, $zero, 1
        sw.nb $t5, 0($t0)        # x = 1
        sw.nb $t5, 0($t1)        # y = 1
        j     Lgrab
`, `
        # Thread B: prefetch x, delay, read y then x.
        pref  $zero, 0($t0)
        lw    $t4, 4($t3)        # delayB
LBd:    blez  $t4, LBgo
        addiu $t4, $t4, -1
        j     LBd
LBgo:   lw    $t6, 0($t1)        # read y
        lw    $t7, 0($t0)        # read x (may hit the stale prefetch)
        sw    $t6, 0($t2)        # obsY
        sw    $t7, 4($t2)        # obsX
        j     Lgrab
`)
}

// LitmusRelaxedNoPref is Fig. 6 without the prefetch: thread B's blocking
// loads then observe memory in module-queue order, which admits (0,0),
// (1,0) and (1,1). Together with LitmusRelaxed the full outcome set of
// Fig. 6 is reachable.
func LitmusRelaxedNoPref() string {
	return litmusCommon(`
        lw    $t4, 0($t3)
LAd:    blez  $t4, LAgo
        addiu $t4, $t4, -1
        j     LAd
LAgo:   addiu $t5, $zero, 1
        sw.nb $t5, 0($t0)        # x = 1
        sw.nb $t5, 0($t1)        # y = 1
        j     Lgrab
`, `
        lw    $t4, 4($t3)
LBd:    blez  $t4, LBgo
        addiu $t4, $t4, -1
        j     LBd
LBgo:   lw    $t6, 0($t1)        # read y
        lw    $t7, 0($t0)        # read x
        sw    $t6, 0($t2)
        sw    $t7, 4($t2)
        j     Lgrab
`)
}

// LitmusPSM is the Fig. 7 program: both threads synchronize over y with
// prefix-sum operations; thread A fences before its psm (the rule the
// compiler enforces), thread B's psm completion flushes its prefetch
// buffer. The (x, y) = (0, 1) outcome is impossible.
func LitmusPSM() string {
	return litmusCommon(`
        # Thread A: delay; x = 1; fence; psm(1, y).
        lw    $t4, 0($t3)
LAd:    blez  $t4, LAgo
        addiu $t4, $t4, -1
        j     LAd
LAgo:   addiu $t5, $zero, 1
        sw.nb $t5, 0($t0)        # x = 1
        fence                    # compiler rule: fence before prefix-sum
        addiu $t5, $zero, 1
        psm   $t5, 0($t1)        # y++
        j     Lgrab
`, `
        # Thread B: prefetch x, delay; tmp = psm(0, y); read x.
        pref  $zero, 0($t0)
        lw    $t4, 4($t3)
LBd:    blez  $t4, LBgo
        addiu $t4, $t4, -1
        j     LBd
LBgo:   addiu $t6, $zero, 0
        fence
        psm   $t6, 0($t1)        # tmpB = y (prefix-sum read)
        lw    $t7, 0($t0)        # read x (prefetch buffer was flushed)
        sw    $t6, 0($t2)        # obsY
        sw    $t7, 4($t2)        # obsX
        j     Lgrab
`)
}

func litmusCommon(threadA, threadB string) string {
	return fmt.Sprintf(`
        .data
x:      .word 0
        .space 124
y:      .word 0
        .space 124
obsY:   .word -1
obsX:   .word -1
        .space 120
delayA: .word 0
delayB: .word 0
        .text
        .global main
main:
        la    $t0, x
        la    $t1, y
        la    $t2, obsY
        la    $t3, delayA
        bcast $t0
        bcast $t1
        bcast $t2
        bcast $t3
        li    $a0, 0
        li    $a1, 1
        fence
        spawn $a0, $a1
Lgrab:  addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        bne   $tid, $zero, LB
%s
LB:
%s
        join
        lw    $v0, obsY
        sys   1
        lw    $v0, obsX
        sys   1
        sys   0
`, threadA, threadB)
}

// LitmusRelaxedXMTC is the Fig. 6 litmus test at the source level: thread
// 0 writes x then y, thread 1 reads y then x, with no order-enforcing
// operation between them. Under the relaxed XMT memory model the reader
// may observe (obsY, obsX) = (1, 0). The static analyzer (spawn-race) must
// flag both the x and the y access pairs on this program.
func LitmusRelaxedXMTC() string {
	return `
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            x = 1;
            y = 1;
        } else {
            obsY = y;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
`
}

// LitmusPSMXMTC is the Fig. 7 litmus test at the source level: the writer
// releases its store to x by synchronizing over y with a psm, and the
// reader acquires through a psm on y before reading x. The compiler's
// fence-before-prefix-sum rule plus the buffer flush at prefix-sum
// completion make "obsY == 1 implies obsX == 1" hold, and the static
// analyzer must report this program clean.
func LitmusPSMXMTC() string {
	return `
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            int one = 1;
            x = 1;
            psm(one, y);
        } else {
            int t = 0;
            psm(t, y);
            obsY = t;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
`
}

// LitmusOutcome is one observed (x, y) pair.
type LitmusOutcome struct{ X, Y int32 }

// RunLitmus executes one litmus trial with the given delays and returns
// thread B's observation.
func RunLitmus(src string, cfg config.Config, delayA, delayB int) (LitmusOutcome, error) {
	u, err := asm.Parse("litmus.s", src)
	if err != nil {
		return LitmusOutcome{}, err
	}
	prog, err := asm.Assemble(u)
	if err != nil {
		return LitmusOutcome{}, err
	}
	mm := fmt.Sprintf("delayA = %d\ndelayB = %d\n", delayA, delayB)
	if err := asm.ApplyMemMap(prog, "litmus.map", mm); err != nil {
		return LitmusOutcome{}, err
	}
	var out bytes.Buffer
	sys, err := cycle.New(prog, cfg, &out)
	if err != nil {
		return LitmusOutcome{}, err
	}
	res, err := sys.Run(2_000_000)
	if err != nil {
		return LitmusOutcome{}, err
	}
	if !res.Halted {
		return LitmusOutcome{}, fmt.Errorf("litmus trial did not halt")
	}
	yAddr, _ := prog.SymAddr("obsY")
	yv, err := sys.Machine.ReadWord(yAddr)
	if err != nil {
		return LitmusOutcome{}, err
	}
	xv, err := sys.Machine.ReadWord(yAddr + 4)
	if err != nil {
		return LitmusOutcome{}, err
	}
	return LitmusOutcome{X: xv, Y: yv}, nil
}

// SweepLitmus runs trials over a grid of delays and returns the set of
// observed outcomes with their counts.
func SweepLitmus(src string, cfg config.Config, maxDelayA, maxDelayB, step int) (map[LitmusOutcome]int, error) {
	if step <= 0 {
		step = 1
	}
	out := make(map[LitmusOutcome]int)
	for da := 0; da <= maxDelayA; da += step {
		for db := 0; db <= maxDelayB; db += step {
			o, err := RunLitmus(src, cfg, da, db)
			if err != nil {
				return nil, err
			}
			out[o]++
		}
	}
	return out, nil
}
