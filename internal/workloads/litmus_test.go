package workloads

import (
	"testing"

	"xmtgo/internal/config"
)

// TestLitmusRelaxed reproduces Fig. 6: with no order-enforcing operations
// the relaxed XMT memory model admits every (x, y) observation by thread B
// — including the counterintuitive (0, 1) caused by a stale prefetched
// line — across the timing sweep.
func TestLitmusRelaxed(t *testing.T) {
	outcomes, err := SweepLitmus(LitmusRelaxed(), config.FPGA64(), 30, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	noPref, err := SweepLitmus(LitmusRelaxedNoPref(), config.FPGA64(), 30, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	for o, n := range noPref {
		outcomes[o] += n
	}
	t.Logf("relaxed outcomes: %v", outcomes)
	for _, want := range []LitmusOutcome{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}} {
		if outcomes[want] == 0 {
			t.Errorf("outcome (x=%d, y=%d) never observed; the relaxed model should admit it", want.X, want.Y)
		}
	}
}

// TestLitmusPSM reproduces Fig. 7: synchronizing over y with prefix-sum
// operations enforces the partial order, so "y==1 implies x==1" holds in
// every trial — (0, 1) is impossible.
func TestLitmusPSM(t *testing.T) {
	outcomes, err := SweepLitmus(LitmusPSM(), config.FPGA64(), 30, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("psm outcomes: %v", outcomes)
	if n := outcomes[LitmusOutcome{X: 0, Y: 1}]; n > 0 {
		t.Fatalf("invariant violated %d times: observed y==1 with x==0 despite psm synchronization", n)
	}
	// The synchronized program must still complete in both orders.
	if outcomes[LitmusOutcome{X: 1, Y: 1}] == 0 {
		t.Error("outcome (1,1) never observed")
	}
}
