// Package workloads generates the XMTC benchmark programs the evaluation
// uses: the four handwritten microbenchmark groups of the paper's Table I
// ({serial, parallel} × {memory, computation} intensive), and the PRAM-style
// application kernels (array compaction, reduction, prefix-sum, BFS, matrix
// multiply, vector add) whose parallel-vs-serial cycle counts reproduce the
// shape of the speedup results the toolchain enabled (paper §II-B).
package workloads

import (
	"fmt"
	"strings"

	"xmtgo/internal/prng"
)

// TableIGroup identifies one row of the paper's Table I.
type TableIGroup int

const (
	ParallelMemory TableIGroup = iota
	ParallelCompute
	SerialMemory
	SerialCompute
)

// Name returns the paper's row label.
func (g TableIGroup) Name() string {
	switch g {
	case ParallelMemory:
		return "Parallel, memory intensive"
	case ParallelCompute:
		return "Parallel, computation intensive"
	case SerialMemory:
		return "Serial, memory intensive"
	case SerialCompute:
		return "Serial, computation intensive"
	}
	return "?"
}

// TableI returns the XMTC source of one Table I microbenchmark. threads is
// the number of virtual threads for the parallel groups; work scales per
// thread (or total serial) effort.
func TableI(g TableIGroup, threads, work int) string {
	switch g {
	case ParallelMemory:
		// Strided sweeps over a large array: every iteration is a shared
		// memory round trip.
		return fmt.Sprintf(`
int A[%d];
int sink = 0;
int main() {
    spawn(0, %d) {
        int i;
        int s = 0;
        for (i = 0; i < %d; i++) {
            s += A[($ * 37 + i * 61) %% %d];
        }
        psm(s, sink);
    }
    print_int(sink);
    return 0;
}`, threads*8, threads-1, work, threads*8)
	case ParallelCompute:
		return fmt.Sprintf(`
int out[%d];
int main() {
    spawn(0, %d) {
        int i;
        int x = $ + 1;
        for (i = 0; i < %d; i++) {
            x = x * 1103515245 + 12345;
            x = x ^ (x >> 7);
        }
        out[$ %% %d] = x;
    }
    print_int(1);
    return 0;
}`, threads, threads-1, work, threads)
	case SerialMemory:
		return fmt.Sprintf(`
int A[%d];
int main() {
    int i, s = 0;
    for (i = 0; i < %d; i++) {
        s += A[(i * 97) %% %d];
        A[(i * 89 + 13) %% %d] = s;
    }
    print_int(s);
    return 0;
}`, work, work, work, work)
	case SerialCompute:
		return fmt.Sprintf(`
int main() {
    int i, x = 1;
    for (i = 0; i < %d; i++) {
        x = x * 1103515245 + 12345;
        x = x ^ (x >> 7);
    }
    print_int(x == 0 ? 0 : 1);
    return 0;
}`, work)
	}
	return ""
}

// Compaction returns the paper's Fig. 2a array-compaction program over a
// random array with the given density of non-zeros, plus the expected
// non-zero count.
func Compaction(n int, density float64, seed uint64) (src string, nonZeros int) {
	rng := prng.New(seed)
	vals := make([]string, n)
	for i := range vals {
		if rng.Float64() < density {
			vals[i] = fmt.Sprintf("%d", rng.Intn(1000)+1)
			nonZeros++
		} else {
			vals[i] = "0"
		}
	}
	src = fmt.Sprintf(`
int A[%d] = {%s};
int B[%d];
int base = 0;
int main() {
    spawn(0, %d) {
        int inc = 1;
        if (A[$] != 0) {
            ps(inc, base);
            B[inc] = A[$];
        }
    }
    print_int(base);
    return 0;
}`, n, strings.Join(vals, ","), n, n-1)
	return src, nonZeros
}

// Reduction returns parallel and serial sum-reduction programs over n
// elements (A[i] = i+1), both printing the total.
func Reduction(n int) (parallel, serial string, want int64) {
	want = int64(n) * int64(n+1) / 2
	parallel = fmt.Sprintf(`
int A[%d];
int total = 0;
int main() {
    int i;
    for (i = 0; i < %d; i++) A[i] = i + 1;
    spawn(0, %d) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total);
    return 0;
}`, n, n, n-1)
	serial = fmt.Sprintf(`
int A[%d];
int main() {
    int i, total = 0;
    for (i = 0; i < %d; i++) A[i] = i + 1;
    for (i = 0; i < %d; i++) total += A[i];
    print_int(total);
    return 0;
}`, n, n, n)
	return parallel, serial, want
}

// VecAdd returns parallel and serial C = A + B over n elements, printing a
// checksum.
func VecAdd(n int) (parallel, serial string, want int64) {
	// A[i] = i, B[i] = 2i => C[i] = 3i; checksum = 3*n*(n-1)/2.
	want = 3 * int64(n) * int64(n-1) / 2
	head := fmt.Sprintf(`
int A[%d];
int B[%d];
int C[%d];
int check = 0;
`, n, n, n)
	parallel = head + fmt.Sprintf(`
int main() {
    int i;
    for (i = 0; i < %d; i++) { A[i] = i; B[i] = 2 * i; }
    spawn(0, %d) {
        C[$] = A[$] + B[$];
    }
    spawn(0, %d) {
        int v = C[$];
        psm(v, check);
    }
    print_int(check);
    return 0;
}`, n, n-1, n-1)
	serial = head + fmt.Sprintf(`
int main() {
    int i, sum = 0;
    for (i = 0; i < %d; i++) { A[i] = i; B[i] = 2 * i; }
    for (i = 0; i < %d; i++) C[i] = A[i] + B[i];
    for (i = 0; i < %d; i++) sum += C[i];
    print_int(sum);
    return 0;
}`, n, n, n)
	return parallel, serial, want
}

// MatMul returns parallel and serial n×n integer matrix multiply programs
// printing the trace of the product (A[i][j] = i+j, B[i][j] = i-j+n).
func MatMul(n int) (parallel, serial string) {
	head := fmt.Sprintf(`
int A[%d];
int B[%d];
int C[%d];
int N = %d;
`, n*n, n*n, n*n, n)
	initCode := fmt.Sprintf(`
    int i, j;
    for (i = 0; i < %d; i++)
        for (j = 0; j < %d; j++) {
            A[i * %d + j] = i + j;
            B[i * %d + j] = i - j + %d;
        }
`, n, n, n, n, n)
	traceCode := fmt.Sprintf(`
    int t = 0;
    for (i = 0; i < %d; i++) t += C[i * %d + i];
    print_int(t);
    return 0;
`, n, n)
	parallel = head + fmt.Sprintf(`
int main() {
%s
    spawn(0, %d) {
        int r = $ / %d;
        int c = $ %% %d;
        int k;
        int acc = 0;
        for (k = 0; k < %d; k++)
            acc += A[r * %d + k] * B[k * %d + c];
        C[r * %d + c] = acc;
    }
%s
}`, initCode, n*n-1, n, n, n, n, n, n, traceCode)
	serial = head + fmt.Sprintf(`
int main() {
%s
    int r, c, k;
    for (r = 0; r < %d; r++)
        for (c = 0; c < %d; c++) {
            int acc = 0;
            for (k = 0; k < %d; k++)
                acc += A[r * %d + k] * B[k * %d + c];
            C[r * %d + c] = acc;
        }
%s
}`, initCode, n, n, n, n, n, n, traceCode)
	return parallel, serial
}

// MatMulTrace computes the expected trace for MatMul's matrices on the
// host, as the correctness oracle.
func MatMulTrace(n int) int64 {
	var t int64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			t += int64((i + k) * (k - i + n))
		}
	}
	return t
}

// Graph is a random graph in CSR form for the BFS workload.
type Graph struct {
	N, M    int
	RowPtr  []int32 // n+1
	Col     []int32 // m
	Dist    []int32 // BFS distances from vertex 0 (host oracle)
	Reached int     // vertices reachable from 0
	DistSum int64   // sum of distances of reached vertices
}

// RandomGraph builds a connected-ish random undirected graph with n
// vertices and approximately deg*n directed edges (each undirected edge
// stored twice), then computes BFS distances from vertex 0 on the host.
func RandomGraph(n, deg int, seed uint64) *Graph {
	rng := prng.New(seed)
	adj := make([][]int32, n)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], int32(b))
		adj[b] = append(adj[b], int32(a))
	}
	// Random spanning tree for connectivity, then random extra edges.
	for v := 1; v < n; v++ {
		addEdge(v, rng.Intn(v))
	}
	extra := (deg - 2) * n / 2
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addEdge(a, b)
		}
	}
	g := &Graph{N: n}
	g.RowPtr = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + int32(len(adj[v]))
	}
	g.M = int(g.RowPtr[n])
	g.Col = make([]int32, 0, g.M)
	for v := 0; v < n; v++ {
		g.Col = append(g.Col, adj[v]...)
	}
	// Host BFS oracle.
	g.Dist = make([]int32, n)
	for i := range g.Dist {
		g.Dist[i] = -1
	}
	g.Dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Reached++
		g.DistSum += int64(g.Dist[v])
		for _, w := range adj[v] {
			if g.Dist[w] < 0 {
				g.Dist[w] = g.Dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return g
}

// MemMap renders the graph as a memory-map file for the BFS programs.
func (g *Graph) MemMap() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n = %d\nm = %d\n", g.N, g.M)
	writeArr := func(name string, vals []int32) {
		fmt.Fprintf(&b, "%s =", name)
		for _, v := range vals {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	writeArr("rowptr", g.RowPtr)
	writeArr("col", g.Col)
	return b.String()
}

// BFS returns parallel (PRAM level-synchronous, ps-compacted frontier) and
// serial (queue) BFS programs for graphs up to maxN vertices / maxM edges.
// Both print "<reached> <distsum>". Inputs arrive via the memory map.
func BFS(maxN, maxM int) (parallel, serial string) {
	head := fmt.Sprintf(`
int n = 0;
int m = 0;
int rowptr[%d];
int col[%d];
int dist[%d];
int frontier[%d];
int next[%d];
int fsize = 0;
`, maxN+1, maxM, maxN, maxN, maxN)
	parallel = head + `
int nextCount = 0;
int level = 0;
int main() {
    int i;
    spawn(0, n - 1) {
        int minus1 = 0 - 1;
        dist[$] = minus1;
    }
    dist[0] = 0;
    frontier[0] = 0;
    fsize = 1;
    while (fsize > 0) {
        level = level + 1;
        spawn(0, fsize - 1) {
            int v = frontier[$];
            int e;
            int lo = rowptr[v];
            int hi = rowptr[v + 1];
            for (e = lo; e < hi; e++) {
                int w = col[e];
                if (dist[w] == -1) {
                    // Claim unvisited vertices with a fetch-add: psm
                    // returns the old value, so exactly one virtual thread
                    // wins each vertex; losers roll their add back.
                    int claim = level + 1;
                    psm(claim, dist[w]);
                    if (claim == -1) {
                        int slot = 1;
                        ps(slot, nextCount);
                        next[slot] = w;
                    } else {
                        int undo = 0 - (level + 1);
                        psm(undo, dist[w]);
                    }
                }
            }
        }
        fsize = nextCount;
        nextCount = 0;
        spawn(0, fsize - 1) { frontier[$] = next[$]; }
    }
    int reached = 0;
    int sum = 0;
    for (i = 0; i < n; i++) {
        if (dist[i] >= 0) { reached++; sum += dist[i]; }
    }
    print_int(reached);
    print_char(' ');
    print_int(sum);
    return 0;
}
`
	serial = head + `
int queue[` + fmt.Sprint(maxN) + `];
int main() {
    int i;
    for (i = 0; i < n; i++) dist[i] = -1;
    dist[0] = 0;
    queue[0] = 0;
    int qh = 0, qt = 1;
    while (qh < qt) {
        int v = queue[qh];
        qh++;
        int e;
        for (e = rowptr[v]; e < rowptr[v + 1]; e++) {
            int w = col[e];
            if (dist[w] == -1) {
                dist[w] = dist[v] + 1;
                queue[qt] = w;
                qt++;
            }
        }
    }
    int reached = 0;
    int sum = 0;
    for (i = 0; i < n; i++) {
        if (dist[i] >= 0) { reached++; sum += dist[i]; }
    }
    print_int(reached);
    print_char(' ');
    print_int(sum);
    return 0;
}
`
	return parallel, serial
}

// FFT returns parallel and serial radix-2 decimation-in-time FFT programs
// over n complex points (n a power of two) — the multi-dimensional FFT of
// [24] is the paper's showcase that XMT extracts speedups "with less
// application parallelism" than coarse-grained machines, because each
// butterfly stage is a fine-grained spawn of n/2 virtual threads. Both
// programs print (int)(re[k]*1000) and (int)(im[k]*1000) for k in
// {0, 1, n/2}; FFTOracle computes the identical float32 arithmetic on the
// host.
func FFT(n int) (parallel, serial string) {
	head := fmt.Sprintf(`
float re[%d];
float im[%d];
float wre[%d];
float wim[%d];
int rev[%d];
int N = %d;
`, n, n, n/2, n/2, n, n)
	// Shared serial setup: input, bit-reversal permutation, twiddles.
	setup := fmt.Sprintf(`
    int i;
    for (i = 0; i < N; i++) {
        re[i] = (float)(i %% 7 - 3);
        im[i] = 0.0;
    }
    // Bit-reversal permutation table and reorder.
    int bits = 0;
    for (i = 1; i < N; i = i * 2) bits++;
    for (i = 0; i < N; i++) {
        int x = i;
        int r = 0;
        int b;
        for (b = 0; b < bits; b++) {
            r = (r << 1) | (x & 1);
            x = x >> 1;
        }
        rev[i] = r;
    }
    for (i = 0; i < N; i++) {
        if (rev[i] > i) {
            float tr = re[i]; re[i] = re[rev[i]]; re[rev[i]] = tr;
            float ti = im[i]; im[i] = im[rev[i]]; im[rev[i]] = ti;
        }
    }
    // Twiddle factors w_k = exp(-2*pi*i*k/N) via the recurrence-free
    // polynomial approximation used on both host and device: a 15-term
    // Taylor series is exact enough in float32 for these sizes.
    for (i = 0; i < N / 2; i++) {
        float ang = -6.2831853 * (float)i / (float)N;
        float t = ang;
        float s = ang;
        float c = 1.0;
        float t2 = ang * ang;
        int k;
        float fact = 1.0;
        // cos
        t = 1.0;
        c = 1.0;
        for (k = 1; k <= 8; k++) {
            t = -t * t2 / ((float)(2 * k - 1) * (float)(2 * k));
            c = c + t;
        }
        // sin
        t = ang;
        s = ang;
        for (k = 1; k <= 8; k++) {
            t = -t * t2 / ((float)(2 * k) * (float)(2 * k + 1));
            s = s + t;
        }
        wre[i] = c;
        wim[i] = s;
        fact = fact;
    }
`)
	report := `
    print_int((int)(re[0] * 1000.0));
    print_char(' ');
    print_int((int)(im[1] * 1000.0));
    print_char(' ');
    print_int((int)(re[N / 2] * 1000.0));
    return 0;
`
	parallel = head + `
int len = 0;
int half = 0;
int main() {
` + setup + `
    for (len = 2; len <= N; len = len * 2) {
        half = len / 2;
        spawn(0, N / 2 - 1) {
            int j = $ % half;
            int blk = $ / half;
            int base = blk * len;
            int tw = j * (N / len);
            float wr = wre[tw];
            float wi = wim[tw];
            int a = base + j;
            int b = a + half;
            float xr = re[b] * wr - im[b] * wi;
            float xi = re[b] * wi + im[b] * wr;
            float ar = re[a];
            float ai = im[a];
            re[b] = ar - xr;
            im[b] = ai - xi;
            re[a] = ar + xr;
            im[a] = ai + xi;
        }
    }
` + report + `}
`
	serial = head + `
int main() {
` + setup + `
    int len;
    for (len = 2; len <= N; len = len * 2) {
        int half = len / 2;
        int t;
        for (t = 0; t < N / 2; t++) {
            int j = t % half;
            int blk = t / half;
            int base = blk * len;
            int tw = j * (N / len);
            float wr = wre[tw];
            float wi = wim[tw];
            int a = base + j;
            int b = a + half;
            float xr = re[b] * wr - im[b] * wi;
            float xi = re[b] * wi + im[b] * wr;
            float ar = re[a];
            float ai = im[a];
            re[b] = ar - xr;
            im[b] = ai - xi;
            re[a] = ar + xr;
            im[a] = ai + xi;
        }
    }
` + report + `}
`
	return parallel, serial
}

// FFTOracle runs the identical float32 algorithm on the host and returns
// the program's expected output string.
func FFTOracle(n int) string {
	re := make([]float32, n)
	im := make([]float32, n)
	for i := 0; i < n; i++ {
		re[i] = float32(i%7 - 3)
	}
	bits := 0
	for i := 1; i < n; i *= 2 {
		bits++
	}
	for i := 0; i < n; i++ {
		x, r := i, 0
		for b := 0; b < bits; b++ {
			r = (r << 1) | (x & 1)
			x >>= 1
		}
		if r > i {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	wre := make([]float32, n/2)
	wim := make([]float32, n/2)
	for i := 0; i < n/2; i++ {
		ang := float32(-6.2831853) * float32(i) / float32(n)
		t2 := ang * ang
		t := float32(1.0)
		c := float32(1.0)
		for k := 1; k <= 8; k++ {
			t = -t * t2 / (float32(2*k-1) * float32(2*k))
			c = c + t
		}
		t = ang
		s := ang
		for k := 1; k <= 8; k++ {
			t = -t * t2 / (float32(2*k) * float32(2*k+1))
			s = s + t
		}
		wre[i] = c
		wim[i] = s
	}
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for t := 0; t < n/2; t++ {
			j := t % half
			blk := t / half
			base := blk * length
			tw := j * (n / length)
			wr, wi := wre[tw], wim[tw]
			a := base + j
			b := a + half
			xr := re[b]*wr - im[b]*wi
			xi := re[b]*wi + im[b]*wr
			ar, ai := re[a], im[a]
			re[b] = ar - xr
			im[b] = ai - xi
			re[a] = ar + xr
			im[a] = ai + xi
		}
	}
	return fmt.Sprintf("%d %d %d",
		int32(re[0]*1000), int32(im[1]*1000), int32(re[n/2]*1000))
}

// PrefixSum returns parallel and serial inclusive-scan programs over n
// elements (A[i] = (i*13)%7) — the textbook PRAM algorithm the XMT
// workflow teaches (Hillis-Steele doubling: log2(n) spawns of n threads).
// Both print the last prefix and a probe in the middle.
func PrefixSum(n int) (parallel, serial string, wantLast, wantMid int64) {
	a := func(i int) int64 { return int64((i * 13) % 7) }
	var sum int64
	for i := 0; i < n; i++ {
		sum += a(i)
		if i == n/2 {
			wantMid = sum
		}
	}
	wantLast = sum
	head := fmt.Sprintf(`
int A[%d];
int B[%d];
int N = %d;
int main() {
    int i;
    for (i = 0; i < N; i++) A[i] = (i * 13) %% 7;
`, n, n, n)
	report := `
    print_int(A[N - 1]);
    print_char(' ');
    print_int(A[N / 2]);
    return 0;
}`
	parallel = head + `
    int d;
    for (d = 1; d < N; d = d * 2) {
        spawn(0, N - 1) {
            int v = A[$];
            if ($ >= d) v = v + A[$ - d];
            B[$] = v;
        }
        spawn(0, N - 1) {
            A[$] = B[$];
        }
    }
` + report
	serial = head + `
    for (i = 1; i < N; i++) A[i] = A[i] + A[i - 1];
` + report
	return parallel, serial, wantLast, wantMid
}

// Connectivity returns parallel and serial connected-components programs
// (paper §II-B reports 2.2x-4x over optimized GPU implementations for
// PRAM-derived connectivity). The parallel version is label propagation:
// every vertex starts with its own id; each round, a spawn over the edge
// list pulls the smaller endpoint label across each edge, with a ps-based
// "changed" counter deciding convergence (races inside a round only delay
// convergence — the spawn barrier between rounds keeps it correct). The
// serial version is a BFS labeling sweep. Both print the component count.
// Graph input arrives via the memory map (src/dst edge lists).
func Connectivity(maxN, maxM int) (parallel, serial string) {
	head := fmt.Sprintf(`
int n = 0;
int m = 0;
int esrc[%d];
int edst[%d];
int label[%d];
`, maxM, maxM, maxN)
	parallel = head + `
int changed = 0;
int main() {
    spawn(0, n - 1) { label[$] = $; }
    int rounds = 0;
    while (1) {
        changed = 0;
        spawn(0, m - 1) {
            int u = esrc[$];
            int v = edst[$];
            int lu = label[u];
            int lv = label[v];
            int one = 1;
            if (lu < lv) {
                label[v] = lu;
                ps(one, changed);
            } else if (lv < lu) {
                label[u] = lv;
                ps(one, changed);
            }
        }
        rounds++;
        if (changed == 0) break;
    }
    int i, comps = 0;
    for (i = 0; i < n; i++) {
        if (label[i] == i) comps++;
    }
    print_int(comps);
    return 0;
}
`
	serial = head + fmt.Sprintf(`
int queue[%d];
int deg[%d];
int rowp[%d];
int adj[%d];
int fill[%d];
int main() {
    int i;
    // Build CSR adjacency from the edge list (undirected), O(n + m).
    for (i = 0; i < n; i++) deg[i] = 0;
    for (i = 0; i < m; i++) { deg[esrc[i]]++; deg[edst[i]]++; }
    rowp[0] = 0;
    for (i = 0; i < n; i++) { rowp[i + 1] = rowp[i] + deg[i]; fill[i] = rowp[i]; }
    for (i = 0; i < m; i++) {
        int u = esrc[i];
        int v = edst[i];
        adj[fill[u]] = v; fill[u]++;
        adj[fill[v]] = u; fill[v]++;
    }
    for (i = 0; i < n; i++) label[i] = -1;
    int comps = 0;
    int v;
    for (v = 0; v < n; v++) {
        if (label[v] != -1) continue;
        comps++;
        label[v] = v;
        int qh = 0, qt = 1;
        queue[0] = v;
        while (qh < qt) {
            int u = queue[qh];
            qh++;
            int e;
            for (e = rowp[u]; e < rowp[u + 1]; e++) {
                int w = adj[e];
                if (label[w] == -1) {
                    label[w] = v;
                    queue[qt] = w;
                    qt++;
                }
            }
        }
    }
    print_int(comps);
    return 0;
}
`, maxN, maxN, maxN+1, 2*maxM, maxN)
	return parallel, serial
}

// ComponentsGraph builds a random graph with the given number of disjoint
// communities and returns its edge-list memory map plus the component
// count.
func ComponentsGraph(n, comps, deg int, seed uint64) (memMap string, componentCount int) {
	rng := prng.New(seed)
	per := n / comps
	type edge struct{ u, v int32 }
	var edges []edge
	for c := 0; c < comps; c++ {
		base := c * per
		size := per
		if c == comps-1 {
			size = n - base
		}
		// Spanning chain plus random intra-community edges.
		for i := 1; i < size; i++ {
			edges = append(edges, edge{int32(base + i - 1), int32(base + i)})
		}
		for i := 0; i < size*(deg-2)/2; i++ {
			a := base + rng.Intn(size)
			b := base + rng.Intn(size)
			if a != b {
				edges = append(edges, edge{int32(a), int32(b)})
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n = %d\nm = %d\nesrc =", n, len(edges))
	for _, e := range edges {
		fmt.Fprintf(&b, " %d", e.u)
	}
	b.WriteString("\nedst =")
	for _, e := range edges {
		fmt.Fprintf(&b, " %d", e.v)
	}
	b.WriteByte('\n')
	return b.String(), comps
}
