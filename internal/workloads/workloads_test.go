package workloads

import (
	"bytes"
	"fmt"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
)

func build(t testing.TB, src string, memmaps ...string) *asm.Program {
	t.Helper()
	res, err := codegen.Compile("wl.c", src, codegen.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := asm.Assemble(res.Unit)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, mm := range memmaps {
		if err := asm.ApplyMemMap(p, "map", mm); err != nil {
			t.Fatalf("memmap: %v", err)
		}
	}
	return p
}

func runF(t testing.TB, p *asm.Program) string {
	t.Helper()
	var out bytes.Buffer
	m, err := funcmodel.New(p, config.FPGA64().MemBytes, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(500_000_000); err != nil {
		t.Fatalf("functional: %v (out=%q)", err, out.String())
	}
	return out.String()
}

func runC(t testing.TB, p *asm.Program, cfg config.Config) (string, int64) {
	t.Helper()
	var out bytes.Buffer
	sys, err := cycle.New(p, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(500_000_000)
	if err != nil {
		t.Fatalf("cycle: %v (out=%q)", err, out.String())
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return out.String(), res.Cycles
}

func TestCompactionWorkload(t *testing.T) {
	src, nz := Compaction(128, 0.4, 7)
	p := build(t, src)
	want := fmt.Sprint(nz)
	if got := runF(t, p); got != want {
		t.Fatalf("functional: got %q want %q", got, want)
	}
	if got, _ := runC(t, p, config.FPGA64()); got != want {
		t.Fatalf("cycle: got %q want %q", got, want)
	}
}

func TestReductionWorkload(t *testing.T) {
	par, ser, want := Reduction(256)
	w := fmt.Sprint(want)
	if got := runF(t, build(t, par)); got != w {
		t.Fatalf("parallel functional: got %q want %q", got, w)
	}
	if got := runF(t, build(t, ser)); got != w {
		t.Fatalf("serial functional: got %q want %q", got, w)
	}
	pOut, pCycles := runC(t, build(t, par), config.FPGA64())
	sOut, sCycles := runC(t, build(t, ser), config.FPGA64())
	if pOut != w || sOut != w {
		t.Fatalf("cycle outputs %q/%q want %q", pOut, sOut, w)
	}
	if pCycles >= sCycles {
		t.Errorf("parallel reduction (%d cycles) not faster than serial (%d cycles) on 64 TCUs", pCycles, sCycles)
	}
}

func TestVecAddWorkload(t *testing.T) {
	par, ser, want := VecAdd(256)
	w := fmt.Sprint(want)
	if got := runF(t, build(t, par)); got != w {
		t.Fatalf("parallel: got %q want %q", got, w)
	}
	if got := runF(t, build(t, ser)); got != w {
		t.Fatalf("serial: got %q want %q", got, w)
	}
}

func TestMatMulWorkload(t *testing.T) {
	par, ser := MatMul(12)
	want := fmt.Sprint(MatMulTrace(12))
	if got := runF(t, build(t, par)); got != want {
		t.Fatalf("parallel: got %q want %q", got, want)
	}
	if got := runF(t, build(t, ser)); got != want {
		t.Fatalf("serial: got %q want %q", got, want)
	}
	pOut, pCycles := runC(t, build(t, par), config.FPGA64())
	sOut, sCycles := runC(t, build(t, ser), config.FPGA64())
	if pOut != want || sOut != want {
		t.Fatalf("cycle outputs %q/%q want %q", pOut, sOut, want)
	}
	if pCycles >= sCycles {
		t.Errorf("parallel matmul (%d cycles) not faster than serial (%d)", pCycles, sCycles)
	}
}

func TestBFSWorkload(t *testing.T) {
	g := RandomGraph(200, 6, 42)
	par, ser := BFS(256, 4096)
	if g.M > 4096 {
		t.Fatalf("graph too large: %d edges", g.M)
	}
	want := fmt.Sprintf("%d %d", g.Reached, g.DistSum)
	mm := g.MemMap()
	if got := runF(t, build(t, ser, mm)); got != want {
		t.Fatalf("serial BFS: got %q want %q", got, want)
	}
	if got := runF(t, build(t, par, mm)); got != want {
		t.Fatalf("parallel BFS (functional): got %q want %q", got, want)
	}
	pOut, _ := runC(t, build(t, par, mm), config.FPGA64())
	if pOut != want {
		t.Fatalf("parallel BFS (cycle): got %q want %q", pOut, want)
	}
}

func TestTableIMicrobenchmarks(t *testing.T) {
	for g := ParallelMemory; g <= SerialCompute; g++ {
		src := TableI(g, 64, 20)
		p := build(t, src)
		out, cycles := runC(t, p, config.FPGA64())
		if out == "" {
			t.Errorf("%s: no output", g.Name())
		}
		if cycles <= 0 {
			t.Errorf("%s: no cycles", g.Name())
		}
	}
}

func TestFFTWorkload(t *testing.T) {
	for _, n := range []int{16, 64} {
		par, ser := FFT(n)
		want := FFTOracle(n)
		if got := runF(t, build(t, ser)); got != want {
			t.Fatalf("n=%d serial FFT: got %q want %q", n, got, want)
		}
		if got := runF(t, build(t, par)); got != want {
			t.Fatalf("n=%d parallel FFT (functional): got %q want %q", n, got, want)
		}
		pOut, pCycles := runC(t, build(t, par), config.FPGA64())
		sOut, sCycles := runC(t, build(t, ser), config.FPGA64())
		if pOut != want || sOut != want {
			t.Fatalf("n=%d cycle outputs %q/%q want %q", n, pOut, sOut, want)
		}
		if n >= 64 && pCycles >= sCycles {
			t.Errorf("n=%d parallel FFT (%d cycles) not faster than serial (%d)", n, pCycles, sCycles)
		}
	}
}

func TestPrefixSumWorkload(t *testing.T) {
	par, ser, last, mid := PrefixSum(128)
	want := fmt.Sprintf("%d %d", last, mid)
	if got := runF(t, build(t, ser)); got != want {
		t.Fatalf("serial scan: got %q want %q", got, want)
	}
	if got := runF(t, build(t, par)); got != want {
		t.Fatalf("parallel scan (functional): got %q want %q", got, want)
	}
	pOut, _ := runC(t, build(t, par), config.FPGA64())
	if pOut != want {
		t.Fatalf("parallel scan (cycle): got %q want %q", pOut, want)
	}
}

// TestLargeBFSChip1024 is a moderate stress test: a 2000-vertex graph on
// the 1024-TCU machine, checked against the host oracle.
func TestLargeBFSChip1024(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := RandomGraph(2000, 8, 5)
	par, _ := BFS(2048, 40960)
	if g.M > 40960 {
		t.Fatalf("graph too large: %d", g.M)
	}
	want := fmt.Sprintf("%d %d", g.Reached, g.DistSum)
	got, cycles := runC(t, build(t, par, g.MemMap()), config.Chip1024())
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	t.Logf("2000-vertex BFS on chip1024: %d cycles", cycles)
}

func TestConnectivityWorkload(t *testing.T) {
	mm, comps := ComponentsGraph(120, 5, 6, 11)
	par, ser := Connectivity(256, 2048)
	want := fmt.Sprint(comps)
	if got := runF(t, build(t, ser, mm)); got != want {
		t.Fatalf("serial connectivity: got %q want %q", got, want)
	}
	if got := runF(t, build(t, par, mm)); got != want {
		t.Fatalf("parallel connectivity (functional): got %q want %q", got, want)
	}
	pOut, _ := runC(t, build(t, par, mm), config.FPGA64())
	if pOut != want {
		t.Fatalf("parallel connectivity (cycle): got %q want %q", pOut, want)
	}
}
