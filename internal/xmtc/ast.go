package xmtc

// The XMTC abstract syntax tree. The tree is mutable: the prepass rewrites
// it (outlining, thread clustering) before lowering.

// Node is any AST node.
type Node interface{ GetPos() Pos }

type base struct{ Pos Pos }

// GetPos returns the node's source position.
func (b base) GetPos() Pos { return b.Pos }

// SymKind classifies symbols.
type SymKind uint8

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a resolved program entity.
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type

	// PsBase marks globals used as a ps base: they live permanently in a
	// global register.
	PsBase bool
	GReg   uint8 // assigned global register when PsBase

	// CapturedByRef marks spawn-captured locals rewritten to by-reference
	// access by the outlining pass.
	CapturedByRef bool

	Def Node // defining VarDecl or FuncDecl
}

// --- Declarations ---

// File is a parsed translation unit.
type File struct {
	base
	Name  string
	Decls []Decl

	// Strings collects string literals for data-segment emission.
	Strings []*StringLit

	// Structs are the struct tag definitions, in source order.
	Structs []*Type
}

// Decl is a top-level declaration.
type Decl interface{ Node }

// VarDecl declares a global or local variable.
type VarDecl struct {
	base
	Name     string
	Type     *Type
	Init     Expr    // scalar initializer, or nil
	InitList []Expr  // array initializer, or nil
	Sym      *Symbol // filled by sema
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	base
	Name   string
	Params []*VarDecl
	Ret    *Type
	Body   *BlockStmt // nil for prototypes
	Sym    *Symbol

	// IsOutlinedSpawn marks functions synthesized by the outlining pass;
	// their body is exactly one spawn statement.
	IsOutlinedSpawn bool
}

// --- Statements ---

// Stmt is a statement.
type Stmt interface{ Node }

// BlockStmt is { ... }. Scopeless blocks are synthesized groupings (e.g.
// multi-declarator statements) that do not open a new scope.
type BlockStmt struct {
	base
	List      []Stmt
	Scopeless bool
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	base
	Decl *VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	base
	X Expr
}

// EmptyStmt is ";".
type EmptyStmt struct{ base }

// IfStmt is if/else.
type IfStmt struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // or nil
}

// WhileStmt is while.
type WhileStmt struct {
	base
	Cond Expr
	Body Stmt
}

// DoStmt is do/while.
type DoStmt struct {
	base
	Body Stmt
	Cond Expr
}

// ForStmt is for(Init; Cond; Post) Body; any part may be nil.
type ForStmt struct {
	base
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// SwitchStmt is a C switch over an integer expression. Cases carry
// constant values; fallthrough follows C semantics (break exits).
type SwitchStmt struct {
	base
	Tag     Expr
	Cases   []*CaseClause
	Default int // index into Cases of the default clause, or -1
}

// CaseClause is one case (or default) arm; Body runs until break or the
// end of the switch (C fallthrough).
type CaseClause struct {
	base
	Values    []int32 // empty for default
	IsDefault bool
	Body      []Stmt
}

// BreakStmt is break.
type BreakStmt struct{ base }

// ContinueStmt is continue.
type ContinueStmt struct{ base }

// ReturnStmt is return [expr].
type ReturnStmt struct {
	base
	X Expr // or nil
}

// SpawnStmt is the XMTC spawn statement: Body runs on High-Low+1 virtual
// threads, $ ranging over [Low, High]. Variables declared in Body are
// private per virtual thread; the statement is an implicit barrier.
type SpawnStmt struct {
	base
	Low, High Expr
	Body      *BlockStmt

	// Serialize marks nested spawns, which the current toolchain release
	// executes as a serial loop (paper §IV-E).
	Serialize bool

	// Cluster > 1 requests virtual-thread clustering (coarsening) by that
	// factor (paper §IV-C); applied by the prepass.
	Cluster int
}

// --- Expressions ---

// Expr is an expression; Type is filled by sema.
type Expr interface {
	Node
	TypeOf() *Type
	setType(*Type)
}

type exprBase struct {
	base
	Typ *Type
}

// TypeOf returns the checked type.
func (e *exprBase) TypeOf() *Type   { return e.Typ }
func (e *exprBase) setType(t *Type) { e.Typ = t }

// Ident is a variable or function reference.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// IntLit is an integer (or char) literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StringLit is a string literal; Label is its data symbol.
type StringLit struct {
	exprBase
	Val   string
	Label string
}

// TidExpr is the virtual thread id $.
type TidExpr struct{ exprBase }

// Binary is a binary operator (arithmetic, comparison, logical).
type Binary struct {
	exprBase
	Op   Tok
	X, Y Expr
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	exprBase
	Op Tok
	X  Expr
}

// Assign is LHS op= RHS (op == ASSIGN for plain assignment).
type Assign struct {
	exprBase
	Op  Tok
	LHS Expr
	RHS Expr
}

// IncDec is ++/-- (Pre or post).
type IncDec struct {
	exprBase
	Op  Tok // INC or DEC
	Pre bool
	X   Expr
}

// Cond is c ? t : f.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a direct function call or builtin.
type Call struct {
	exprBase
	Name    string
	Args    []Expr
	Sym     *Symbol // user function; nil for builtins
	Builtin Builtin
}

// Builtin identifies the XMTC builtins.
type Builtin uint8

const (
	NotBuiltin Builtin = iota
	BuiltinPs          // ps(inc, base): hardware prefix-sum on a global register
	BuiltinPsm         // psm(inc, base): prefix-sum to memory
	BuiltinPrintInt
	BuiltinPrintFloat
	BuiltinPrintChar
	BuiltinPrintString
	BuiltinCycle      // xmt_cycle()
	BuiltinMalloc     // serial-mode dynamic allocation (library call)
	BuiltinCheckpoint // request a simulator checkpoint
	BuiltinPrefetch   // explicit prefetch hint
	BuiltinReadOnly   // lwro-backed read: xmt_ro_read(&x)
)

// Index is X[I].
type Index struct {
	exprBase
	X, I Expr
}

// Member is X.Name or X->Name (Arrow); Field is resolved by sema.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *Field
}

// Cast is (T)X.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(T) or sizeof(expr); resolved to a constant by sema.
type SizeofExpr struct {
	exprBase
	OfType *Type
	OfExpr Expr
}
