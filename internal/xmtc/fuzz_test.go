package xmtc_test

import (
	"os"
	"path/filepath"
	"testing"

	"xmtgo/internal/xmtc"
)

// FuzzParseXMTC drives the XMTC parser (and, when parsing succeeds, the
// semantic checker) with arbitrary inputs: both must return errors, never
// panic or hang, whatever the input. Seeds are the bundled example
// programs. Run at length with
//
//	go test -fuzz FuzzParseXMTC ./internal/xmtc
//
// scripts/check.sh runs a short smoke of this target.
func FuzzParseXMTC(f *testing.F) {
	seeds, _ := filepath.Glob("../../examples/xmtc/*.c")
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("int main() { return 0; }")
	f.Add("int A[8]; int main() { spawn(0, 7) { A[$] = $; } return A[3]; }")
	f.Add("int x; int main() { int inc = 1; spawn(0,3) { ps(inc, x); } return x; }")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := xmtc.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		_, _ = xmtc.Check(file)
	})
}
