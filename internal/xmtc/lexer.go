package xmtc

import (
	"strconv"
	"strings"
)

// Lexer tokenizes XMTC source.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer for src.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '#':
			// Preprocessor lines (e.g. #include) are skipped: the XMTC
			// toolchain's headers only declare the builtins, which this
			// compiler knows natively.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			switch kw {
			case KwTrue:
				return Token{Kind: INTLIT, Pos: pos, Int: 1}, nil
			case KwFalse:
				return Token{Kind: INTLIT, Pos: pos, Int: 0}, nil
			}
			return Token{Kind: kw, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil

	case isDigit(c), c == '.' && isDigit(l.peek2()):
		return l.number(pos)

	case c == '"':
		return l.stringLit(pos)

	case c == '\'':
		return l.charLit(pos)

	case c == '$':
		l.advance()
		return Token{Kind: DOLLAR, Pos: pos}, nil
	}

	// Operators, longest match first.
	three := ""
	if l.off+3 <= len(l.src) {
		three = l.src[l.off : l.off+3]
	}
	switch three {
	case "<<=":
		l.advanceN(3)
		return Token{Kind: SHLA, Pos: pos}, nil
	case ">>=":
		l.advanceN(3)
		return Token{Kind: SHRA, Pos: pos}, nil
	}
	two := ""
	if l.off+2 <= len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	twoTok := map[string]Tok{
		"->": ARROW, "+=": ADDA, "-=": SUBA, "*=": MULA, "/=": DIVA, "%=": REMA,
		"&=": ANDA, "|=": ORA, "^=": XORA, "||": OROR, "&&": ANDAND,
		"==": EQ, "!=": NE, "<=": LE, ">=": GE, "<<": SHL, ">>": SHR,
		"++": INC, "--": DEC,
	}
	if t, ok := twoTok[two]; ok {
		l.advanceN(2)
		return Token{Kind: t, Pos: pos}, nil
	}
	oneTok := map[byte]Tok{
		'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE, '[': LBRACK, ']': RBRACK,
		';': SEMI, ',': COMMA, '?': QUESTION, ':': COLON, '=': ASSIGN,
		'|': OR, '^': XOR, '&': AND, '<': LT, '>': GT, '+': ADD, '-': SUB,
		'*': MUL, '/': DIV, '%': REM, '!': NOT, '~': TILDE, '.': DOT,
	}
	if t, ok := oneTok[c]; ok {
		l.advance()
		return Token{Kind: t, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (l *Lexer) advanceN(n int) {
	for i := 0; i < n; i++ {
		l.advance()
	}
}

func (l *Lexer) number(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advanceN(2)
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 32)
		if err != nil {
			return Token{}, errf(pos, "bad hex literal %q", l.src[start:l.off])
		}
		if l.peek() == 'u' || l.peek() == 'U' {
			l.advance()
		}
		return Token{Kind: INTLIT, Pos: pos, Int: int64(v)}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		isFloat = true
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'f' || l.peek() == 'F' {
		isFloat = true
		l.advance()
		text := l.src[start : l.off-1]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: FLOATLIT, Pos: pos, Flt: f}, nil
	}
	text := l.src[start:l.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: FLOATLIT, Pos: pos, Flt: f}, nil
	}
	v, err := strconv.ParseUint(text, 10, 32)
	if err != nil {
		return Token{}, errf(pos, "bad integer literal %q", text)
	}
	if l.peek() == 'u' || l.peek() == 'U' {
		l.advance()
	}
	return Token{Kind: INTLIT, Pos: pos, Int: int64(v)}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) stringLit(pos Pos) (Token, error) {
	l.advance() // "
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			return Token{Kind: STRINGLIT, Pos: pos, Text: b.String()}, nil
		}
		if c == '\\' {
			e, err := l.escape(pos)
			if err != nil {
				return Token{}, err
			}
			b.WriteByte(e)
			continue
		}
		b.WriteByte(c)
	}
}

func (l *Lexer) charLit(pos Pos) (Token, error) {
	l.advance() // '
	if l.off >= len(l.src) {
		return Token{}, errf(pos, "unterminated char literal")
	}
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(pos)
		if err != nil {
			return Token{}, err
		}
		c = e
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return Token{}, errf(pos, "unterminated char literal")
	}
	return Token{Kind: INTLIT, Pos: pos, Int: int64(c)}, nil
}

func (l *Lexer) escape(pos Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, errf(pos, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, errf(pos, "unknown escape \\%c", c)
}

// LexAll tokenizes the whole input (convenience for tests).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
