package xmtc

import "fmt"

// Parser is a recursive-descent parser for XMTC. Because the subset has no
// typedefs, declarations are always introduced by a type keyword, which
// keeps statement/declaration disambiguation trivial.
type Parser struct {
	toks []Token
	pos  int
	file string

	strCount int
	strs     []*StringLit

	// structs is the file-level struct tag table (tags must be defined
	// before use); structOrder keeps definition order for rendering.
	structs     map[string]*Type
	structOrder []*Type
}

// Parse parses a translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file, structs: make(map[string]*Type)}
	f := &File{Name: file}
	f.Pos = p.cur().Pos
	for p.cur().Kind != EOF {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d...)
	}
	f.Strings = p.strs
	f.Structs = p.structOrder
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Tok) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Tok) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Tok) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *Parser) describe(t Token) string {
	if t.Kind == IDENT {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

func isTypeStart(k Tok) bool {
	switch k {
	case KwInt, KwUnsigned, KwFloat, KwChar, KwVoid, KwVolatile, KwConst, KwBool, KwStruct:
		return true
	}
	return false
}

// parseBaseType parses qualifiers + a base type keyword.
func (p *Parser) parseBaseType() (*Type, error) {
	volatile := false
	for p.at(KwVolatile) || p.at(KwConst) {
		if p.at(KwVolatile) {
			volatile = true
		}
		p.next()
	}
	var t *Type
	switch p.cur().Kind {
	case KwInt:
		p.next()
		t = TypeInt
	case KwUnsigned:
		p.next()
		p.accept(KwInt)
		t = TypeUnsigned
	case KwFloat:
		p.next()
		t = TypeFloat
	case KwChar:
		p.next()
		t = TypeChar
	case KwVoid:
		p.next()
		t = TypeVoid
	case KwBool:
		p.next()
		t = TypeInt
	case KwStruct:
		p.next()
		tag, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[tag.Text]
		if !ok {
			return nil, errf(tag.Pos, "struct %q is not defined (tags must be defined before use)", tag.Text)
		}
		t = st
	default:
		return nil, errf(p.cur().Pos, "expected type, found %s", p.describe(p.cur()))
	}
	// Trailing qualifiers (e.g. "int volatile").
	for p.at(KwVolatile) || p.at(KwConst) {
		if p.at(KwVolatile) {
			volatile = true
		}
		p.next()
	}
	if volatile {
		c := *t
		c.Volatile = true
		t = &c
	}
	return t, nil
}

// parseDeclarator parses *... name [N]... on top of base. Unsized array
// dimensions are only legal in parameter declarations (allowUnsized),
// where they decay to pointers.
func (p *Parser) parseDeclarator(bt *Type, allowUnsized bool) (string, *Type, Pos, error) {
	t := bt
	for p.accept(MUL) {
		t = PtrTo(t)
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return "", nil, Pos{}, err
	}
	// Array suffixes, outermost first: int a[2][3] is array(2) of array(3).
	var dims []int32
	for p.accept(LBRACK) {
		if p.at(RBRACK) {
			if !allowUnsized {
				return "", nil, Pos{}, errf(p.cur().Pos, "array %q needs an explicit size", nameTok.Text)
			}
			dims = append(dims, -1)
		} else {
			sz, err := p.parseConstIntExpr()
			if err != nil {
				return "", nil, Pos{}, err
			}
			dims = append(dims, sz)
		}
		if _, err := p.expect(RBRACK); err != nil {
			return "", nil, Pos{}, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 0 {
			t = PtrTo(t) // unsized dimension decays
		} else {
			t = ArrayOf(t, dims[i])
		}
	}
	return nameTok.Text, t, nameTok.Pos, nil
}

// parseConstIntExpr parses an expression and requires a compile-time
// integer constant (full folding happens in sema; here a small evaluator
// covers literals and +-*/<< >> combinations).
func (p *Parser) parseConstIntExpr() (int32, error) {
	pos := p.cur().Pos
	e, err := p.parseCondExpr()
	if err != nil {
		return 0, err
	}
	v, ok := FoldConst(e)
	if !ok {
		return 0, errf(pos, "expected constant expression")
	}
	return v, nil
}

// FoldConst evaluates integer constant expressions over literals.
func FoldConst(e Expr) (int32, bool) {
	switch n := e.(type) {
	case *IntLit:
		return int32(n.Val), true
	case *Unary:
		v, ok := FoldConst(n.X)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case SUB:
			return -v, true
		case TILDE:
			return ^v, true
		case NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case ADD:
			return v, true
		}
	case *Binary:
		a, ok1 := FoldConst(n.X)
		b, ok2 := FoldConst(n.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch n.Op {
		case ADD:
			return a + b, true
		case SUB:
			return a - b, true
		case MUL:
			return a * b, true
		case DIV:
			if b != 0 {
				return a / b, true
			}
		case REM:
			if b != 0 {
				return a % b, true
			}
		case SHL:
			return a << uint(b&31), true
		case SHR:
			return a >> uint(b&31), true
		case AND:
			return a & b, true
		case OR:
			return a | b, true
		case XOR:
			return a ^ b, true
		}
	case *SizeofExpr:
		if n.OfType != nil {
			return n.OfType.Size(), true
		}
	case *Cast:
		return FoldConst(n.X)
	}
	return 0, false
}

// parseStructDef parses "struct Tag { member-decls };" and registers the
// tag.
func (p *Parser) parseStructDef() error {
	p.next() // struct
	tag, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if _, dup := p.structs[tag.Text]; dup {
		return errf(tag.Pos, "struct %q redefined", tag.Text)
	}
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	// Register the tag before parsing members so self-references through
	// pointers (linked lists, trees) resolve.
	st := &Type{Kind: KStruct, StructName: tag.Text}
	p.structs[tag.Text] = st
	p.structOrder = append(p.structOrder, st)

	var fields []*Field
	seen := make(map[string]bool)
	for !p.at(RBRACE) {
		bt, err := p.parseBaseType()
		if err != nil {
			return err
		}
		for {
			name, t, pos, err := p.parseDeclarator(bt, false)
			if err != nil {
				return err
			}
			if t.Kind == KVoid {
				return errf(pos, "struct member %q has void type", name)
			}
			if t.ContainsByValue(st) {
				return errf(pos, "struct %q contains itself by value through member %q (use a pointer)", tag.Text, name)
			}
			if seen[name] {
				return errf(pos, "duplicate struct member %q", name)
			}
			seen[name] = true
			fields = append(fields, &Field{Name: name, Type: t})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	}
	p.next() // }
	if _, err := p.expect(SEMI); err != nil {
		return err
	}
	if len(fields) == 0 {
		return errf(tag.Pos, "struct %q has no members", tag.Text)
	}
	st.LayoutStruct(fields)
	return nil
}

// parseTopDecl parses one top-level declaration (possibly a multi-variable
// declaration, hence the slice).
func (p *Parser) parseTopDecl() ([]Decl, error) {
	// Struct tag definition: "struct Name { ... };".
	if p.at(KwStruct) && p.toks[p.pos+1].Kind == IDENT && p.toks[p.pos+2].Kind == LBRACE {
		if err := p.parseStructDef(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	bt, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	name, t, pos, err := p.parseDeclarator(bt, false)
	if err != nil {
		return nil, err
	}
	if p.at(LPAREN) {
		fd, err := p.parseFuncRest(name, t, pos)
		if err != nil {
			return nil, err
		}
		return []Decl{fd}, nil
	}
	var decls []Decl
	for {
		vd := &VarDecl{Name: name, Type: t}
		vd.Pos = pos
		if p.accept(ASSIGN) {
			if p.at(LBRACE) {
				lst, err := p.parseInitList()
				if err != nil {
					return nil, err
				}
				vd.InitList = lst
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				vd.Init = e
			}
		}
		decls = append(decls, vd)
		if !p.accept(COMMA) {
			break
		}
		name, t, pos, err = p.parseDeclarator(bt, false)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseInitList() ([]Expr, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.at(RBRACE) {
		e, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseFuncRest(name string, ret *Type, pos Pos) (*FuncDecl, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name, Ret: ret}
	fd.Pos = pos
	if !p.at(RPAREN) {
		if p.at(KwVoid) && p.toks[p.pos+1].Kind == RPAREN {
			p.next()
		} else {
			for {
				bt, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				pname, pt, ppos, err := p.parseDeclarator(bt, true)
				if err != nil {
					return nil, err
				}
				if pt.Kind == KArray {
					pt = PtrTo(pt.Elem) // parameter arrays decay
				}
				pd := &VarDecl{Name: pname, Type: pt}
				pd.Pos = ppos
				fd.Params = append(fd.Params, pd)
				if !p.accept(COMMA) {
					break
				}
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if p.accept(SEMI) {
		return fd, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// --- Statements ---

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	blk.Pos = lb.Pos
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == LBRACE:
		return p.parseBlock()
	case t.Kind == SEMI:
		p.next()
		s := &EmptyStmt{}
		s.Pos = t.Pos
		return s, nil
	case isTypeStart(t.Kind):
		return p.parseLocalDecl()
	case t.Kind == KwIf:
		return p.parseIf()
	case t.Kind == KwWhile:
		return p.parseWhile()
	case t.Kind == KwDo:
		return p.parseDo()
	case t.Kind == KwFor:
		return p.parseFor()
	case t.Kind == KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &BreakStmt{}
		s.Pos = t.Pos
		return s, nil
	case t.Kind == KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &ContinueStmt{}
		s.Pos = t.Pos
		return s, nil
	case t.Kind == KwReturn:
		p.next()
		s := &ReturnStmt{}
		s.Pos = t.Pos
		if !p.at(SEMI) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	case t.Kind == KwSpawn:
		return p.parseSpawn()
	case t.Kind == KwSwitch:
		return p.parseSwitch()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	s := &ExprStmt{X: e}
	s.Pos = t.Pos
	return s, nil
}

// parseLocalDecl handles multi-declarator local declarations, returning a
// block when more than one variable is declared.
func (p *Parser) parseLocalDecl() (Stmt, error) {
	pos := p.cur().Pos
	bt, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	var list []Stmt
	for {
		name, t, dpos, err := p.parseDeclarator(bt, false)
		if err != nil {
			return nil, err
		}
		vd := &VarDecl{Name: name, Type: t}
		vd.Pos = dpos
		if p.accept(ASSIGN) {
			if p.at(LBRACE) {
				lst, err := p.parseInitList()
				if err != nil {
					return nil, err
				}
				vd.InitList = lst
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				vd.Init = e
			}
		}
		ds := &DeclStmt{Decl: vd}
		ds.Pos = dpos
		list = append(list, ds)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if len(list) == 1 {
		return list[0], nil
	}
	blk := &BlockStmt{List: list, Scopeless: true}
	blk.Pos = pos
	return blk, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	s.Pos = t.Pos
	if p.accept(KwElse) {
		e, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = e
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &WhileStmt{Cond: cond, Body: body}
	s.Pos = t.Pos
	return s, nil
}

func (p *Parser) parseDo() (Stmt, error) {
	t := p.next()
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	s := &DoStmt{Body: body, Cond: cond}
	s.Pos = t.Pos
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	s.Pos = t.Pos
	if !p.at(SEMI) {
		if isTypeStart(p.cur().Kind) {
			init, err := p.parseLocalDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es := &ExprStmt{X: e}
			es.Pos = e.GetPos()
			s.Init = es
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(SEMI) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = e
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// parseSwitch parses a C switch with constant case labels; consecutive
// labels share a clause and C fallthrough applies between clauses.
func (p *Parser) parseSwitch() (Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	s := &SwitchStmt{Tag: tag, Default: -1}
	s.Pos = t.Pos
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, errf(t.Pos, "unterminated switch")
		}
		cl := &CaseClause{}
		cl.Pos = p.cur().Pos
		// One clause may stack several labels (case 1: case 2: ... or a
		// default among them).
		sawLabel := false
		for p.at(KwCase) || p.at(KwDefault) {
			sawLabel = true
			if p.accept(KwDefault) {
				if s.Default >= 0 || cl.IsDefault {
					return nil, errf(cl.Pos, "duplicate default clause")
				}
				cl.IsDefault = true
			} else {
				p.next() // case
				v, err := p.parseConstIntExpr()
				if err != nil {
					return nil, err
				}
				cl.Values = append(cl.Values, v)
			}
			if _, err := p.expect(COLON); err != nil {
				return nil, err
			}
		}
		if !sawLabel {
			return nil, errf(p.cur().Pos, "expected case or default inside switch, found %s", p.describe(p.cur()))
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBRACE) {
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cl.Body = append(cl.Body, st)
		}
		if cl.IsDefault {
			s.Default = len(s.Cases)
		}
		s.Cases = append(s.Cases, cl)
	}
	p.next() // }
	return s, nil
}

func (p *Parser) parseSpawn() (Stmt, error) {
	t := p.next() // spawn
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	low, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	high, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &SpawnStmt{Low: low, High: high, Body: body}
	s.Pos = t.Pos
	return s, nil
}

// --- Expressions ---

func (p *Parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	// Comma operator: evaluate left for effect, yield right. Lowered as a
	// Binary with COMMA.
	for p.at(COMMA) {
		t := p.next()
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: COMMA, X: e, Y: r}
		b.Pos = t.Pos
		e = b
	}
	return e, nil
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN, ADDA, SUBA, MULA, DIVA, REMA, ANDA, ORA, XORA, SHLA, SHRA:
		op := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
		a.Pos = op.Pos
		return a, nil
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(QUESTION) {
		return c, nil
	}
	q := p.next()
	t, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	f, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	e := &Cond{C: c, T: t, F: f}
	e.Pos = q.Pos
	return e, nil
}

var binPrec = map[Tok]int{
	OROR: 1, ANDAND: 2, OR: 3, XOR: 4, AND: 5,
	EQ: 6, NE: 6, LT: 7, GT: 7, LE: 7, GE: 7,
	SHL: 8, SHR: 8, ADD: 9, SUB: 9, MUL: 10, DIV: 10, REM: 10,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: op.Kind, X: lhs, Y: rhs}
		b.Pos = op.Pos
		lhs = b
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case ADD:
		p.next()
		return p.parseUnary()
	case SUB, NOT, TILDE, MUL, AND:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: t.Kind, X: x}
		u.Pos = t.Pos
		return u, nil
	case INC, DEC:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e := &IncDec{Op: t.Kind, Pre: true, X: x}
		e.Pos = t.Pos
		return e, nil
	case KwSizeof:
		p.next()
		s := &SizeofExpr{}
		s.Pos = t.Pos
		if p.at(LPAREN) && isTypeStart(p.toks[p.pos+1].Kind) {
			p.next()
			bt, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			ty := bt
			for p.accept(MUL) {
				ty = PtrTo(ty)
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			s.OfType = ty
			return s, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		s.OfExpr = x
		return s, nil
	case LPAREN:
		// Cast or parenthesized expression.
		if isTypeStart(p.toks[p.pos+1].Kind) {
			p.next()
			bt, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			ty := bt
			for p.accept(MUL) {
				ty = PtrTo(ty)
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c := &Cast{To: ty, X: x}
			c.Pos = t.Pos
			return c, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LBRACK:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			ix := &Index{X: e, I: idx}
			ix.Pos = t.Pos
			e = ix
		case INC, DEC:
			p.next()
			id := &IncDec{Op: t.Kind, Pre: false, X: e}
			id.Pos = t.Pos
			e = id
		case DOT, ARROW:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			m := &Member{X: e, Name: name.Text, Arrow: t.Kind == ARROW}
			m.Pos = t.Pos
			e = m
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		e := &IntLit{Val: t.Int}
		e.Pos = t.Pos
		return e, nil
	case FLOATLIT:
		p.next()
		e := &FloatLit{Val: t.Flt}
		e.Pos = t.Pos
		return e, nil
	case STRINGLIT:
		p.next()
		e := &StringLit{Val: t.Text, Label: fmt.Sprintf("__str_%d", p.strCount)}
		e.Pos = t.Pos
		p.strCount++
		p.strs = append(p.strs, e)
		return e, nil
	case DOLLAR:
		p.next()
		e := &TidExpr{}
		e.Pos = t.Pos
		return e, nil
	case IDENT:
		p.next()
		if p.at(LPAREN) {
			p.next()
			c := &Call{Name: t.Text}
			c.Pos = t.Pos
			for !p.at(RPAREN) {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return c, nil
		}
		e := &Ident{Name: t.Text}
		e.Pos = t.Pos
		return e, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", p.describe(t))
}
