package prepass

import (
	"fmt"

	"xmtgo/internal/xmtc"
)

// outlineFunc extracts every spawn statement of fd into a new top-level
// function (Fig. 8): captured serial-scope variables are detected, passed
// by value when only read by the parallel code and by reference when it
// may write them, and the spawn statement is replaced by a call.
func (p *pass) outlineFunc(fd *xmtc.FuncDecl) ([]xmtc.Decl, error) {
	var out []xmtc.Decl
	count := 0
	var visit func(s xmtc.Stmt) error
	replaceIn := func(list []xmtc.Stmt, i int, sp *xmtc.SpawnStmt) error {
		call, nfd, err := p.outlineOne(fd, sp, count)
		if err != nil {
			return err
		}
		count++
		list[i] = call
		out = append(out, nfd)
		return nil
	}
	var visitSlot func(slot *xmtc.Stmt) error
	visit = func(s xmtc.Stmt) error {
		switch n := s.(type) {
		case *xmtc.BlockStmt:
			for i, st := range n.List {
				if sp, ok := st.(*xmtc.SpawnStmt); ok {
					if err := replaceIn(n.List, i, sp); err != nil {
						return err
					}
					continue
				}
				if err := visit(st); err != nil {
					return err
				}
			}
		case *xmtc.IfStmt:
			if err := visitSlot(&n.Then); err != nil {
				return err
			}
			if n.Else != nil {
				return visitSlot(&n.Else)
			}
		case *xmtc.WhileStmt:
			return visitSlot(&n.Body)
		case *xmtc.DoStmt:
			return visitSlot(&n.Body)
		case *xmtc.ForStmt:
			return visitSlot(&n.Body)
		case *xmtc.SwitchStmt:
			for _, cl := range n.Cases {
				for i, st := range cl.Body {
					if sp, ok := st.(*xmtc.SpawnStmt); ok {
						if err := replaceIn(cl.Body, i, sp); err != nil {
							return err
						}
						continue
					}
					if err := visit(st); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	visitSlot = func(slot *xmtc.Stmt) error {
		if sp, ok := (*slot).(*xmtc.SpawnStmt); ok {
			call, nfd, err := p.outlineOne(fd, sp, count)
			if err != nil {
				return err
			}
			count++
			*slot = call
			out = append(out, nfd)
			return nil
		}
		return visit(*slot)
	}
	if err := visit(fd.Body); err != nil {
		return nil, err
	}
	return out, nil
}

// capture describes one variable crossing the spawn boundary.
type capture struct {
	sym   *xmtc.Symbol
	byRef bool
	param *xmtc.Symbol // parameter symbol in the outlined function
}

// outlineOne builds the outlined function for one spawn statement and the
// replacement call.
func (p *pass) outlineOne(fd *xmtc.FuncDecl, sp *xmtc.SpawnStmt, idx int) (xmtc.Stmt, *xmtc.FuncDecl, error) {
	name := fmt.Sprintf("__outl_%s_%d", fd.Name, idx)

	// Private (spawn-local) declarations are not captures.
	private := make(map[*xmtc.Symbol]bool)
	declaredSyms(sp.Body, private)

	// Collect referenced serial-scope locals/params, in first-use order,
	// and which of them the spawn may write.
	var order []*xmtc.Symbol
	seen := make(map[*xmtc.Symbol]*capture)
	written := make(map[*xmtc.Symbol]bool)

	note := func(sym *xmtc.Symbol) {
		if sym == nil || private[sym] {
			return
		}
		if sym.Kind != xmtc.SymLocal && sym.Kind != xmtc.SymParam {
			return
		}
		if _, ok := seen[sym]; !ok {
			seen[sym] = &capture{sym: sym}
			order = append(order, sym)
		}
	}
	rootIdent := func(e xmtc.Expr) *xmtc.Symbol {
		if id, ok := e.(*xmtc.Ident); ok {
			return id.Sym
		}
		return nil
	}
	collect := func(e xmtc.Expr) xmtc.Expr {
		switch n := e.(type) {
		case *xmtc.Ident:
			note(n.Sym)
		case *xmtc.Assign:
			if s := rootIdent(n.LHS); s != nil {
				written[s] = true
			}
		case *xmtc.IncDec:
			if s := rootIdent(n.X); s != nil {
				written[s] = true
			}
		case *xmtc.Unary:
			if n.Op == xmtc.AND {
				if s := rootIdent(n.X); s != nil {
					written[s] = true // address escapes: be conservative
				}
			}
		case *xmtc.Call:
			// ps/psm write their increment argument.
			if n.Builtin == xmtc.BuiltinPs || n.Builtin == xmtc.BuiltinPsm {
				if s := rootIdent(n.Args[0]); s != nil {
					written[s] = true
				}
			}
		}
		return e
	}
	walkStmtExprs(sp.Body, collect, true)
	sp.Low = walkExpr(sp.Low, collect)
	sp.High = walkExpr(sp.High, collect)

	// Classify captures and build parameters.
	nfd := &xmtc.FuncDecl{Name: name, Ret: xmtc.TypeVoid, IsOutlinedSpawn: true}
	nfd.Pos = sp.Pos
	var caps []*capture
	for _, sym := range order {
		c := seen[sym]
		var pt *xmtc.Type
		switch {
		case sym.Type.Kind == xmtc.KStruct:
			// Structs always travel by reference: TCUs hold a pointer to
			// the caller's storage.
			c.byRef = true
			pt = xmtc.PtrTo(sym.Type)
		case sym.Type.Kind == xmtc.KArray:
			// Arrays decay: passed by value as a pointer (writes through it
			// hit the caller's storage, like Fig. 8's array A).
			pt = xmtc.PtrTo(sym.Type.Elem)
		case written[sym] || sym.Type.Volatile:
			c.byRef = true
			pt = xmtc.PtrTo(sym.Type)
			// The ps/psm increment must stay a plain register variable; a
			// by-reference rewrite would break the primitive's contract.
			if isPsIncrement(sp, sym) {
				return nil, nil, &xmtc.Error{Pos: sp.Pos, Msg: fmt.Sprintf("ps/psm increment %q must be declared inside the spawn block (it is captured by reference)", sym.Name)}
			}
		default:
			pt = sym.Type
		}
		psym := &xmtc.Symbol{Name: "__cap_" + sym.Name, Kind: xmtc.SymParam, Type: pt}
		pd := &xmtc.VarDecl{Name: psym.Name, Type: pt, Sym: psym}
		pd.Pos = sp.Pos
		psym.Def = pd
		c.param = psym
		nfd.Params = append(nfd.Params, pd)
		caps = append(caps, c)
	}

	// Rewrite references inside the spawn (including bounds).
	rewrite := func(e xmtc.Expr) xmtc.Expr {
		id, ok := e.(*xmtc.Ident)
		if !ok {
			return e
		}
		c, ok := seen[id.Sym]
		if !ok {
			return e
		}
		if c.byRef {
			return mkDeref(mkIdent(c.param))
		}
		return mkIdent(c.param)
	}
	walkStmtExprs(sp.Body, rewrite, true)
	sp.Low = walkExpr(sp.Low, rewrite)
	sp.High = walkExpr(sp.High, rewrite)

	body := &xmtc.BlockStmt{List: []xmtc.Stmt{sp}}
	body.Pos = sp.Pos
	nfd.Body = body

	ft := &xmtc.Type{Kind: xmtc.KFunc, Ret: xmtc.TypeVoid}
	for _, pd := range nfd.Params {
		ft.Params = append(ft.Params, pd.Type)
	}
	nfd.Sym = &xmtc.Symbol{Name: name, Kind: xmtc.SymFunc, Type: ft, Def: nfd}

	// Build the replacement call.
	call := &xmtc.Call{Name: name, Sym: nfd.Sym}
	call.Typ = xmtc.TypeVoid
	call.Pos = sp.Pos
	for _, c := range caps {
		arg := xmtc.Expr(mkIdent(c.sym))
		if c.byRef {
			arg = mkAddr(mkIdent(c.sym))
		}
		call.Args = append(call.Args, arg)
	}
	st := &xmtc.ExprStmt{X: call}
	st.Pos = sp.Pos
	return st, nfd, nil
}

// isPsIncrement reports whether sym is used as a ps/psm increment inside
// the spawn.
func isPsIncrement(sp *xmtc.SpawnStmt, sym *xmtc.Symbol) bool {
	found := false
	walkStmtExprs(sp.Body, func(e xmtc.Expr) xmtc.Expr {
		if n, ok := e.(*xmtc.Call); ok &&
			(n.Builtin == xmtc.BuiltinPs || n.Builtin == xmtc.BuiltinPsm) {
			if id, ok := n.Args[0].(*xmtc.Ident); ok && id.Sym == sym {
				found = true
			}
		}
		return e
	}, true)
	return found
}
