// Package prepass implements the source-to-source pre-pass of the XMTC
// compiler (the CIL-based pass in the paper): it serializes nested spawn
// statements (paper §IV-E), optionally applies virtual-thread clustering
// (coarsening, §IV-C), and performs outlining (§IV-B, Fig. 8) — each spawn
// statement is extracted into a new top-level function and replaced by a
// call, with captured serial-scope variables passed by value or, when the
// parallel code may write them, by reference. Outlining prevents the
// illegal dataflow a serial core pass could otherwise create across
// spawn-block boundaries.
package prepass

import (
	"fmt"

	"xmtgo/internal/xmtc"
)

// Options configure the pre-pass.
type Options struct {
	// ClusterFactor > 1 groups that many consecutive virtual threads into
	// one longer virtual thread (thread clustering).
	ClusterFactor int
	// DisableOutline keeps spawns inline (for compiler experiments; the
	// core pass still handles them, unlike GCC).
	DisableOutline bool
}

// Run rewrites the checked AST in place.
func Run(f *xmtc.File, opts Options) error {
	p := &pass{file: f, opts: opts}
	for _, d := range f.Decls {
		if fd, ok := d.(*xmtc.FuncDecl); ok && fd.Body != nil {
			p.fn = fd
			if err := p.rewriteStmts(fd.Body); err != nil {
				return err
			}
		}
	}
	// Outlining appends new functions; do it after the per-function
	// rewrites so indices stay stable.
	if !opts.DisableOutline {
		var newDecls []xmtc.Decl
		for _, d := range f.Decls {
			newDecls = append(newDecls, d)
			if fd, ok := d.(*xmtc.FuncDecl); ok && fd.Body != nil && !fd.IsOutlinedSpawn {
				outlined, err := p.outlineFunc(fd)
				if err != nil {
					return err
				}
				newDecls = append(newDecls, outlined...)
			}
		}
		f.Decls = newDecls
	}
	return nil
}

type pass struct {
	file *xmtc.File
	fn   *xmtc.FuncDecl
	opts Options
	n    int // fresh-name counter
}

func (p *pass) fresh(prefix string) string {
	p.n++
	return fmt.Sprintf("__%s_%d", prefix, p.n)
}

// --- small AST constructors (types filled so sema need not re-run) ---

func mkInt(v int32) *xmtc.IntLit {
	e := &xmtc.IntLit{Val: int64(v)}
	e.Typ = xmtc.TypeInt
	return e
}

func mkIdent(sym *xmtc.Symbol) *xmtc.Ident {
	e := &xmtc.Ident{Name: sym.Name, Sym: sym}
	e.Typ = sym.Type
	return e
}

func mkBin(op xmtc.Tok, x, y xmtc.Expr, t *xmtc.Type) *xmtc.Binary {
	e := &xmtc.Binary{Op: op, X: x, Y: y}
	e.Typ = t
	return e
}

func mkAssign(lhs, rhs xmtc.Expr) *xmtc.Assign {
	e := &xmtc.Assign{Op: xmtc.ASSIGN, LHS: lhs, RHS: rhs}
	e.Typ = lhs.TypeOf()
	return e
}

func mkDeref(x xmtc.Expr) *xmtc.Unary {
	e := &xmtc.Unary{Op: xmtc.MUL, X: x}
	e.Typ = x.TypeOf().Elem
	return e
}

func mkAddr(x xmtc.Expr) *xmtc.Unary {
	e := &xmtc.Unary{Op: xmtc.AND, X: x}
	e.Typ = xmtc.PtrTo(x.TypeOf())
	return e
}

func mkLocal(name string, t *xmtc.Type, init xmtc.Expr) (*xmtc.DeclStmt, *xmtc.Symbol) {
	sym := &xmtc.Symbol{Name: name, Kind: xmtc.SymLocal, Type: t}
	vd := &xmtc.VarDecl{Name: name, Type: t, Init: init, Sym: sym}
	sym.Def = vd
	return &xmtc.DeclStmt{Decl: vd}, sym
}

// rewriteStmts walks statements, transforming serialized nested spawns and
// applying clustering to parallel spawns.
func (p *pass) rewriteStmts(s xmtc.Stmt) error {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for i, st := range n.List {
			if sp, ok := st.(*xmtc.SpawnStmt); ok {
				repl, err := p.rewriteSpawn(sp)
				if err != nil {
					return err
				}
				n.List[i] = repl
				continue
			}
			if err := p.rewriteStmts(st); err != nil {
				return err
			}
		}
		return nil
	case *xmtc.IfStmt:
		if err := p.rewriteChild(&n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return p.rewriteChild(&n.Else)
		}
		return nil
	case *xmtc.WhileStmt:
		return p.rewriteChild(&n.Body)
	case *xmtc.DoStmt:
		return p.rewriteChild(&n.Body)
	case *xmtc.ForStmt:
		return p.rewriteChild(&n.Body)
	case *xmtc.SwitchStmt:
		for _, cl := range n.Cases {
			for i, st := range cl.Body {
				if sp, ok := st.(*xmtc.SpawnStmt); ok {
					repl, err := p.rewriteSpawn(sp)
					if err != nil {
						return err
					}
					cl.Body[i] = repl
					continue
				}
				if err := p.rewriteStmts(st); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (p *pass) rewriteChild(slot *xmtc.Stmt) error {
	if sp, ok := (*slot).(*xmtc.SpawnStmt); ok {
		repl, err := p.rewriteSpawn(sp)
		if err != nil {
			return err
		}
		*slot = repl
		return nil
	}
	return p.rewriteStmts(*slot)
}

// rewriteSpawn handles one spawn statement: serialization of nested
// spawns first (bottom-up), then optional clustering.
func (p *pass) rewriteSpawn(sp *xmtc.SpawnStmt) (xmtc.Stmt, error) {
	// First rewrite spawns nested inside this one (they are marked
	// Serialize by sema).
	if err := p.rewriteStmts(sp.Body); err != nil {
		return nil, err
	}
	if sp.Serialize {
		return p.serializeSpawn(sp)
	}
	factor := sp.Cluster
	if factor <= 1 {
		factor = p.opts.ClusterFactor
	}
	if factor > 1 {
		return p.clusterSpawn(sp, factor)
	}
	return sp, nil
}

// serializeSpawn turns a nested spawn into a serial loop:
//
//	{ int $i; for ($i = low; $i <= high; $i++) { body[$ -> $i] } }
func (p *pass) serializeSpawn(sp *xmtc.SpawnStmt) (xmtc.Stmt, error) {
	decl, iv := mkLocal(p.fresh("sid"), xmtc.TypeInt, nil)
	rewriteTid(sp.Body, iv)
	loop := &xmtc.ForStmt{
		Init: &xmtc.ExprStmt{X: mkAssign(mkIdent(iv), sp.Low)},
		Cond: mkBin(xmtc.LE, mkIdent(iv), sp.High, xmtc.TypeInt),
		Post: &xmtc.IncDec{Op: xmtc.INC, Pre: true, X: mkIdent(iv)},
		Body: sp.Body,
	}
	loop.Pos = sp.Pos
	blk := &xmtc.BlockStmt{List: []xmtc.Stmt{decl, loop}}
	blk.Pos = sp.Pos
	return blk, nil
}

// clusterSpawn applies virtual-thread clustering by the given factor:
//
//	{ int lo = low; int hi = high;
//	  spawn(0, (hi-lo)/factor) {
//	    int k; int base = lo + $*factor;
//	    int top = base+factor-1; if (top > hi) top = hi;
//	    for (k = base; k <= top; k++) { body[$ -> k] }
//	  } }
//
// Combining multiple short virtual threads into a loop reduces scheduling
// overhead and enables loop prefetching and value reuse (paper §IV-C).
func (p *pass) clusterSpawn(sp *xmtc.SpawnStmt, factor int) (xmtc.Stmt, error) {
	loD, lo := mkLocal(p.fresh("clo"), xmtc.TypeInt, sp.Low)
	hiD, hi := mkLocal(p.fresh("chi"), xmtc.TypeInt, sp.High)
	kD, k := mkLocal(p.fresh("ck"), xmtc.TypeInt, nil)

	rewriteTid(sp.Body, k)

	tid := &xmtc.TidExpr{}
	tid.Typ = xmtc.TypeInt
	baseInit := mkBin(xmtc.ADD, mkIdent(lo),
		mkBin(xmtc.MUL, tid, mkInt(int32(factor)), xmtc.TypeInt), xmtc.TypeInt)
	baseD, bsym := mkLocal(p.fresh("cbase"), xmtc.TypeInt, baseInit)
	topD, tsym := mkLocal(p.fresh("ctop"), xmtc.TypeInt,
		mkBin(xmtc.ADD, mkIdent(bsym), mkInt(int32(factor-1)), xmtc.TypeInt))
	clamp := &xmtc.IfStmt{
		Cond: mkBin(xmtc.GT, mkIdent(tsym), mkIdent(hi), xmtc.TypeInt),
		Then: &xmtc.ExprStmt{X: mkAssign(mkIdent(tsym), mkIdent(hi))},
	}
	loop := &xmtc.ForStmt{
		Init: &xmtc.ExprStmt{X: mkAssign(mkIdent(k), mkIdent(bsym))},
		Cond: mkBin(xmtc.LE, mkIdent(k), mkIdent(tsym), xmtc.TypeInt),
		Post: &xmtc.IncDec{Op: xmtc.INC, Pre: true, X: mkIdent(k)},
		Body: sp.Body,
	}
	newBody := &xmtc.BlockStmt{List: []xmtc.Stmt{kD, baseD, topD, clamp, loop}}
	newBody.Pos = sp.Pos

	groups := mkBin(xmtc.DIV,
		mkBin(xmtc.SUB, mkIdent(hi), mkIdent(lo), xmtc.TypeInt),
		mkInt(int32(factor)), xmtc.TypeInt)
	newSpawn := &xmtc.SpawnStmt{Low: mkInt(0), High: groups, Body: newBody}
	newSpawn.Pos = sp.Pos

	blk := &xmtc.BlockStmt{List: []xmtc.Stmt{loD, hiD, newSpawn}}
	blk.Pos = sp.Pos
	return blk, nil
}

// rewriteTid replaces $ with a reference to sym throughout a subtree
// (without descending into nested spawn statements, whose $ is their own).
func rewriteTid(s xmtc.Stmt, sym *xmtc.Symbol) {
	walkStmtExprs(s, func(e xmtc.Expr) xmtc.Expr {
		if _, ok := e.(*xmtc.TidExpr); ok {
			return mkIdent(sym)
		}
		return e
	}, false)
}
