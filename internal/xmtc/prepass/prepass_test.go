package prepass

import (
	"strings"
	"testing"

	"xmtgo/internal/xmtc"
)

func run(t *testing.T, src string, opts Options) *xmtc.File {
	t.Helper()
	f, err := xmtc.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := xmtc.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := Run(f, opts); err != nil {
		t.Fatalf("prepass: %v", err)
	}
	return f
}

func funcNames(f *xmtc.File) []string {
	var out []string
	for _, d := range f.Decls {
		if fd, ok := d.(*xmtc.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd.Name)
		}
	}
	return out
}

// TestOutliningFig8 reproduces the paper's Fig. 8: the spawn is extracted
// into a new function; the read-only array is passed by value (as a
// pointer) and the written scalar by reference.
func TestOutliningFig8(t *testing.T) {
	f := run(t, `
int A[8];
int counter = 0;
int main() {
    int found = 0;
    spawn(0, 7) {
        if (A[$] != 0) found = 1;
    }
    if (found) counter += 1;
    return 0;
}`, Options{})
	names := funcNames(f)
	if len(names) != 2 || names[1] != "__outl_main_0" {
		t.Fatalf("functions = %v", names)
	}
	text := xmtc.Render(f)
	// The replacement call passes &found (by reference).
	if !strings.Contains(text, "__outl_main_0(&found)") {
		t.Fatalf("expected by-reference capture of found:\n%s", text)
	}
	// Inside the outlined function, found is accessed through the pointer.
	if !strings.Contains(text, "*__cap_found") {
		t.Fatalf("expected dereference rewrite:\n%s", text)
	}
	// The global A stays a direct global access (not captured).
	if strings.Contains(text, "__cap_A") {
		t.Fatalf("globals must not be captured:\n%s", text)
	}
}

func TestOutliningByValue(t *testing.T) {
	f := run(t, `
int B[16];
int main() {
    int scale = 3;
    spawn(0, 15) {
        B[$] = $ * scale;
    }
    return 0;
}`, Options{})
	text := xmtc.Render(f)
	// scale is only read: by value, no dereference.
	if !strings.Contains(text, "__outl_main_0(scale)") {
		t.Fatalf("expected by-value capture:\n%s", text)
	}
	if strings.Contains(text, "*__cap_scale") {
		t.Fatalf("read-only capture must not be by reference:\n%s", text)
	}
}

func TestOutliningLocalArrayDecays(t *testing.T) {
	f := run(t, `
int main() {
    int buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = 0;
    spawn(0, 7) {
        buf[$] = $;
    }
    return buf[3];
}`, Options{})
	text := xmtc.Render(f)
	// The local array is passed by value as a pointer (writes through it
	// still reach the caller's storage, like Fig. 8's array A).
	if !strings.Contains(text, "__outl_main_0(buf)") {
		t.Fatalf("expected array capture by decayed value:\n%s", text)
	}
}

func TestOutliningBoundsCaptured(t *testing.T) {
	f := run(t, `
int B[64];
int main() {
    int n = 64;
    spawn(0, n - 1) {
        B[$] = 1;
    }
    return 0;
}`, Options{})
	text := xmtc.Render(f)
	if !strings.Contains(text, "__outl_main_0(n)") {
		t.Fatalf("spawn bounds must be captured too:\n%s", text)
	}
}

func TestSerializedNestedSpawnBecomesLoop(t *testing.T) {
	f := run(t, `
int M[16];
int main() {
    spawn(0, 3) {
        spawn(0, 3) {
            M[$] = $;
        }
    }
    return 0;
}`, Options{})
	text := xmtc.Render(f)
	if strings.Count(text, "spawn(") != 1 {
		t.Fatalf("inner spawn must be serialized into a loop:\n%s", text)
	}
	if !strings.Contains(text, "for (") {
		t.Fatalf("expected a serial loop:\n%s", text)
	}
}

func TestClusteringRewrite(t *testing.T) {
	f := run(t, `
int B[100];
int main() {
    spawn(0, 99) {
        B[$] = $;
    }
    return 0;
}`, Options{ClusterFactor: 4})
	text := xmtc.Render(f)
	// The rewritten spawn covers thread groups, with an inner loop.
	if !strings.Contains(text, "for (") {
		t.Fatalf("expected the coarsening loop:\n%s", text)
	}
	if !strings.Contains(text, "/ 4") {
		t.Fatalf("expected group-count division by the factor:\n%s", text)
	}
}

func TestPsIncrementCaptureRejected(t *testing.T) {
	f, err := xmtc.Parse("t.c", `
int base = 0;
int main() {
    int inc = 1;
    spawn(0, 7) {
        ps(inc, base);
    }
    return inc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmtc.Check(f); err != nil {
		t.Fatal(err)
	}
	if err := Run(f, Options{}); err == nil ||
		!strings.Contains(err.Error(), "increment") {
		t.Fatalf("want ps-increment capture error, got %v", err)
	}
}

func TestDisableOutline(t *testing.T) {
	f := run(t, `
int B[8];
int main() {
    spawn(0, 7) { B[$] = 1; }
    return 0;
}`, Options{DisableOutline: true})
	if len(funcNames(f)) != 1 {
		t.Fatalf("outlining ran despite DisableOutline: %v", funcNames(f))
	}
}
