package prepass

import "xmtgo/internal/xmtc"

// rewriteFn transforms an expression node (children already rewritten).
type rewriteFn func(xmtc.Expr) xmtc.Expr

// walkExpr rewrites an expression tree bottom-up.
func walkExpr(e xmtc.Expr, fn rewriteFn) xmtc.Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *xmtc.Binary:
		n.X = walkExpr(n.X, fn)
		n.Y = walkExpr(n.Y, fn)
	case *xmtc.Unary:
		n.X = walkExpr(n.X, fn)
	case *xmtc.Assign:
		n.LHS = walkExpr(n.LHS, fn)
		n.RHS = walkExpr(n.RHS, fn)
	case *xmtc.IncDec:
		n.X = walkExpr(n.X, fn)
	case *xmtc.Cond:
		n.C = walkExpr(n.C, fn)
		n.T = walkExpr(n.T, fn)
		n.F = walkExpr(n.F, fn)
	case *xmtc.Call:
		for i := range n.Args {
			n.Args[i] = walkExpr(n.Args[i], fn)
		}
	case *xmtc.Index:
		n.X = walkExpr(n.X, fn)
		n.I = walkExpr(n.I, fn)
	case *xmtc.Member:
		n.X = walkExpr(n.X, fn)
	case *xmtc.Cast:
		n.X = walkExpr(n.X, fn)
	case *xmtc.SizeofExpr:
		if n.OfExpr != nil {
			n.OfExpr = walkExpr(n.OfExpr, fn)
		}
	}
	return fn(e)
}

// walkStmtExprs applies fn to every expression under s. When intoSpawn is
// false, nested spawn statements are skipped ($-scoping).
func walkStmtExprs(s xmtc.Stmt, fn rewriteFn, intoSpawn bool) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			walkStmtExprs(st, fn, intoSpawn)
		}
	case *xmtc.DeclStmt:
		if n.Decl.Init != nil {
			n.Decl.Init = walkExpr(n.Decl.Init, fn)
		}
		for i := range n.Decl.InitList {
			n.Decl.InitList[i] = walkExpr(n.Decl.InitList[i], fn)
		}
	case *xmtc.ExprStmt:
		n.X = walkExpr(n.X, fn)
	case *xmtc.IfStmt:
		n.Cond = walkExpr(n.Cond, fn)
		walkStmtExprs(n.Then, fn, intoSpawn)
		if n.Else != nil {
			walkStmtExprs(n.Else, fn, intoSpawn)
		}
	case *xmtc.WhileStmt:
		n.Cond = walkExpr(n.Cond, fn)
		walkStmtExprs(n.Body, fn, intoSpawn)
	case *xmtc.DoStmt:
		walkStmtExprs(n.Body, fn, intoSpawn)
		n.Cond = walkExpr(n.Cond, fn)
	case *xmtc.ForStmt:
		if n.Init != nil {
			walkStmtExprs(n.Init, fn, intoSpawn)
		}
		if n.Cond != nil {
			n.Cond = walkExpr(n.Cond, fn)
		}
		if n.Post != nil {
			n.Post = walkExpr(n.Post, fn)
		}
		walkStmtExprs(n.Body, fn, intoSpawn)
	case *xmtc.ReturnStmt:
		if n.X != nil {
			n.X = walkExpr(n.X, fn)
		}
	case *xmtc.SwitchStmt:
		n.Tag = walkExpr(n.Tag, fn)
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				walkStmtExprs(st, fn, intoSpawn)
			}
		}
	case *xmtc.SpawnStmt:
		if intoSpawn {
			n.Low = walkExpr(n.Low, fn)
			n.High = walkExpr(n.High, fn)
			walkStmtExprs(n.Body, fn, true)
		}
	}
}

// declaredSyms collects symbols declared inside a subtree.
func declaredSyms(s xmtc.Stmt, out map[*xmtc.Symbol]bool) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			declaredSyms(st, out)
		}
	case *xmtc.DeclStmt:
		out[n.Decl.Sym] = true
	case *xmtc.IfStmt:
		declaredSyms(n.Then, out)
		if n.Else != nil {
			declaredSyms(n.Else, out)
		}
	case *xmtc.WhileStmt:
		declaredSyms(n.Body, out)
	case *xmtc.DoStmt:
		declaredSyms(n.Body, out)
	case *xmtc.ForStmt:
		if n.Init != nil {
			declaredSyms(n.Init, out)
		}
		declaredSyms(n.Body, out)
	case *xmtc.SwitchStmt:
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				declaredSyms(st, out)
			}
		}
	case *xmtc.SpawnStmt:
		declaredSyms(n.Body, out)
	}
}
