package xmtc

import (
	"fmt"
	"strings"
)

// Render prints an AST back as XMTC-like source. Its main use is the
// compiler's -dump-prepass view, which shows the outlined program of
// Fig. 8c (serialized nested spawns, clustered loops, outlined spawn
// functions and their by-value/by-reference captures).
func Render(f *File) string {
	var b strings.Builder
	for _, st := range f.Structs {
		fmt.Fprintf(&b, "struct %s {\n", st.StructName)
		for _, fl := range st.Fields {
			fmt.Fprintf(&b, "    %s;\n", declString(fl.Name, fl.Type))
		}
		b.WriteString("};\n")
	}
	for _, d := range f.Decls {
		switch n := d.(type) {
		case *VarDecl:
			b.WriteString(renderVarDecl(n, 0))
			b.WriteString(";\n")
		case *FuncDecl:
			if n.Body == nil {
				fmt.Fprintf(&b, "%s %s(...);\n", n.Ret, n.Name)
				continue
			}
			fmt.Fprintf(&b, "%s %s(", n.Ret, n.Name)
			for i, p := range n.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(declString(p.Name, p.Type))
			}
			b.WriteString(")\n")
			b.WriteString(renderStmt(n.Body, 0))
		}
	}
	return b.String()
}

func indent(n int) string { return strings.Repeat("    ", n) }

// declString renders a C-style declarator (arrays suffix the name).
func declString(name string, t *Type) string {
	suffix := ""
	for t.Kind == KArray {
		suffix += fmt.Sprintf("[%d]", t.ArrayLen)
		t = t.Elem
	}
	return fmt.Sprintf("%s %s%s", t, name, suffix)
}

func renderVarDecl(d *VarDecl, depth int) string {
	s := indent(depth) + declString(d.Name, d.Type)
	if d.Init != nil {
		s += " = " + RenderExpr(d.Init)
	}
	if d.InitList != nil {
		var parts []string
		for _, e := range d.InitList {
			parts = append(parts, RenderExpr(e))
		}
		s += " = {" + strings.Join(parts, ", ") + "}"
	}
	return s
}

func renderStmt(s Stmt, depth int) string {
	switch n := s.(type) {
	case *BlockStmt:
		var b strings.Builder
		if n.Scopeless {
			for _, st := range n.List {
				b.WriteString(renderStmt(st, depth))
			}
			return b.String()
		}
		b.WriteString(indent(depth) + "{\n")
		for _, st := range n.List {
			b.WriteString(renderStmt(st, depth+1))
		}
		b.WriteString(indent(depth) + "}\n")
		return b.String()
	case *DeclStmt:
		return renderVarDecl(n.Decl, depth) + ";\n"
	case *ExprStmt:
		return indent(depth) + RenderExpr(n.X) + ";\n"
	case *EmptyStmt:
		return indent(depth) + ";\n"
	case *IfStmt:
		out := indent(depth) + "if (" + RenderExpr(n.Cond) + ")\n" + renderStmt(n.Then, depth+1)
		if n.Else != nil {
			out += indent(depth) + "else\n" + renderStmt(n.Else, depth+1)
		}
		return out
	case *WhileStmt:
		return indent(depth) + "while (" + RenderExpr(n.Cond) + ")\n" + renderStmt(n.Body, depth+1)
	case *DoStmt:
		return indent(depth) + "do\n" + renderStmt(n.Body, depth+1) +
			indent(depth) + "while (" + RenderExpr(n.Cond) + ");\n"
	case *ForStmt:
		init, cond, post := "", "", ""
		if n.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(renderStmt(n.Init, 0)), ";\n")
			init = strings.TrimSuffix(init, ";")
		}
		if n.Cond != nil {
			cond = RenderExpr(n.Cond)
		}
		if n.Post != nil {
			post = RenderExpr(n.Post)
		}
		return fmt.Sprintf("%sfor (%s; %s; %s)\n%s", indent(depth), init, cond, post, renderStmt(n.Body, depth+1))
	case *BreakStmt:
		return indent(depth) + "break;\n"
	case *ContinueStmt:
		return indent(depth) + "continue;\n"
	case *ReturnStmt:
		if n.X == nil {
			return indent(depth) + "return;\n"
		}
		return indent(depth) + "return " + RenderExpr(n.X) + ";\n"
	case *SwitchStmt:
		var b strings.Builder
		fmt.Fprintf(&b, "%sswitch (%s) {\n", indent(depth), RenderExpr(n.Tag))
		for _, cl := range n.Cases {
			for _, v := range cl.Values {
				fmt.Fprintf(&b, "%scase %d:\n", indent(depth), v)
			}
			if cl.IsDefault {
				fmt.Fprintf(&b, "%sdefault:\n", indent(depth))
			}
			for _, st := range cl.Body {
				b.WriteString(renderStmt(st, depth+1))
			}
		}
		fmt.Fprintf(&b, "%s}\n", indent(depth))
		return b.String()
	case *SpawnStmt:
		tag := ""
		if n.Serialize {
			tag = " /* serialized */"
		}
		return fmt.Sprintf("%sspawn(%s, %s)%s\n%s", indent(depth),
			RenderExpr(n.Low), RenderExpr(n.High), tag, renderStmt(n.Body, depth+1))
	}
	return indent(depth) + "/* ? */\n"
}

// RenderExpr prints one expression.
func RenderExpr(e Expr) string {
	switch n := e.(type) {
	case *Ident:
		return n.Name
	case *IntLit:
		return fmt.Sprintf("%d", n.Val)
	case *FloatLit:
		return fmt.Sprintf("%g", n.Val)
	case *StringLit:
		return fmt.Sprintf("%q", n.Val)
	case *TidExpr:
		return "$"
	case *Binary:
		if n.Op == COMMA {
			return "(" + RenderExpr(n.X) + ", " + RenderExpr(n.Y) + ")"
		}
		return "(" + RenderExpr(n.X) + " " + n.Op.String() + " " + RenderExpr(n.Y) + ")"
	case *Unary:
		return n.Op.String() + RenderExpr(n.X)
	case *Assign:
		return RenderExpr(n.LHS) + " " + n.Op.String() + " " + RenderExpr(n.RHS)
	case *IncDec:
		if n.Pre {
			return n.Op.String() + RenderExpr(n.X)
		}
		return RenderExpr(n.X) + n.Op.String()
	case *Cond:
		return "(" + RenderExpr(n.C) + " ? " + RenderExpr(n.T) + " : " + RenderExpr(n.F) + ")"
	case *Call:
		var args []string
		for _, a := range n.Args {
			args = append(args, RenderExpr(a))
		}
		return n.Name + "(" + strings.Join(args, ", ") + ")"
	case *Index:
		return RenderExpr(n.X) + "[" + RenderExpr(n.I) + "]"
	case *Member:
		op := "."
		if n.Arrow {
			op = "->"
		}
		return RenderExpr(n.X) + op + n.Name
	case *Cast:
		return "(" + n.To.String() + ")" + RenderExpr(n.X)
	case *SizeofExpr:
		if n.OfType != nil {
			return "sizeof(" + n.OfType.String() + ")"
		}
		return "sizeof " + RenderExpr(n.OfExpr)
	}
	return "?"
}
