package xmtc

import (
	"xmtgo/internal/diag"
)

// Info is the result of semantic analysis.
type Info struct {
	// PsBases are globals used as ps bases, in first-use order; each is
	// permanently assigned a global register.
	PsBases []*Symbol
	// Globals are all global variables in declaration order.
	Globals []*VarDecl
	// Funcs are all function definitions in declaration order.
	Funcs []*FuncDecl
	// Warnings are non-fatal, position-carrying diagnostics (e.g.
	// serialized nested spawns).
	Warnings []diag.Diagnostic
}

// checker carries semantic analysis state.
type checker struct {
	file   *File
	info   *Info
	scopes []map[string]*Symbol
	funcs  map[string]*Symbol

	curFunc     *FuncDecl
	spawnDepth  int
	loopDepth   int
	switchDepth int
}

// Check resolves names, types and XMTC-specific rules. The AST is
// annotated in place.
func Check(f *File) (*Info, error) {
	c := &checker{
		file:  f,
		info:  &Info{},
		funcs: make(map[string]*Symbol),
	}
	c.push()
	defer c.pop()

	// Two passes over top-level declarations: collect signatures first so
	// forward calls resolve.
	for _, d := range f.Decls {
		switch n := d.(type) {
		case *VarDecl:
			if err := c.declareGlobal(n); err != nil {
				return nil, err
			}
		case *FuncDecl:
			if err := c.declareFunc(n); err != nil {
				return nil, err
			}
		}
	}
	for _, d := range f.Decls {
		switch n := d.(type) {
		case *VarDecl:
			if err := c.checkGlobalInit(n); err != nil {
				return nil, err
			}
		case *FuncDecl:
			if n.Body == nil {
				continue
			}
			if err := c.checkFunc(n); err != nil {
				return nil, err
			}
			c.info.Funcs = append(c.info.Funcs, n)
		}
	}
	if _, ok := c.funcs["main"]; !ok {
		return nil, errf(f.Pos, "no main function defined")
	}
	return c.info, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return errf(pos, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declareGlobal(n *VarDecl) error {
	if n.Type.Kind == KVoid {
		return errf(n.Pos, "variable %q has void type", n.Name)
	}
	sym := &Symbol{Name: n.Name, Kind: SymGlobal, Type: n.Type, Def: n}
	n.Sym = sym
	c.info.Globals = append(c.info.Globals, n)
	return c.declare(sym, n.Pos)
}

func (c *checker) declareFunc(n *FuncDecl) error {
	if n.Ret.Kind == KStruct {
		return errf(n.Pos, "function %q returns a struct: return results through a pointer parameter", n.Name)
	}
	for _, p := range n.Params {
		if p.Type.Kind == KStruct {
			return errf(p.Pos, "parameter %q is a struct: pass structs by pointer", p.Name)
		}
	}
	ft := &Type{Kind: KFunc, Ret: n.Ret}
	for _, p := range n.Params {
		ft.Params = append(ft.Params, p.Type)
	}
	if prev, ok := c.funcs[n.Name]; ok {
		if !prev.Type.Same(ft) {
			return errf(n.Pos, "conflicting declarations of %q", n.Name)
		}
		if prevDef := prev.Def.(*FuncDecl); prevDef.Body != nil && n.Body != nil {
			return errf(n.Pos, "function %q redefined", n.Name)
		}
		if n.Body != nil {
			prev.Def = n
		}
		n.Sym = prev
		return nil
	}
	sym := &Symbol{Name: n.Name, Kind: SymFunc, Type: ft, Def: n}
	n.Sym = sym
	c.funcs[n.Name] = sym
	return c.declare(sym, n.Pos)
}

func (c *checker) checkGlobalInit(n *VarDecl) error {
	if n.Type.Kind == KStruct && (n.Init != nil || n.InitList != nil) {
		return errf(n.Pos, "struct global %q cannot have an initializer (zero-initialized; use a memory map or assignments)", n.Name)
	}
	if n.Init != nil {
		if err := c.expr(n.Init); err != nil {
			return err
		}
		if _, ok := FoldConst(n.Init); !ok {
			if _, isF := n.Init.(*FloatLit); !isF {
				if _, isS := n.Init.(*StringLit); !isS {
					return errf(n.Pos, "global initializer for %q must be constant", n.Name)
				}
			}
		}
	}
	for _, e := range n.InitList {
		if err := c.expr(e); err != nil {
			return err
		}
		if _, ok := FoldConst(e); !ok {
			if _, isF := e.(*FloatLit); !isF {
				return errf(n.Pos, "array initializer for %q must be constant", n.Name)
			}
		}
	}
	if n.InitList != nil && n.Type.Kind != KArray {
		return errf(n.Pos, "brace initializer on non-array %q", n.Name)
	}
	if n.Type.Kind == KArray && int32(len(n.InitList)) > n.Type.ArrayLen {
		return errf(n.Pos, "too many initializers for %q", n.Name)
	}
	return nil
}

func (c *checker) checkFunc(n *FuncDecl) error {
	c.curFunc = n
	c.push()
	defer c.pop()
	for _, p := range n.Params {
		if p.Type.Kind == KVoid {
			return errf(p.Pos, "parameter %q has void type", p.Name)
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, Def: p}
		p.Sym = sym
		if err := c.declare(sym, p.Pos); err != nil {
			return err
		}
	}
	return c.stmt(n.Body)
}

func (c *checker) stmt(s Stmt) error {
	switch n := s.(type) {
	case *BlockStmt:
		if !n.Scopeless {
			c.push()
			defer c.pop()
		}
		for _, st := range n.List {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		d := n.Decl
		if d.Type.Kind == KVoid {
			return errf(d.Pos, "variable %q has void type", d.Name)
		}
		if d.Init != nil {
			if err := c.expr(d.Init); err != nil {
				return err
			}
			if !d.Type.AssignableFrom(decay(d.Init.TypeOf())) && !isNullToPtr(d.Type, d.Init) {
				return errf(d.Pos, "cannot initialize %s %q with %s", d.Type, d.Name, d.Init.TypeOf())
			}
		}
		if d.InitList != nil {
			if d.Type.Kind != KArray {
				return errf(d.Pos, "brace initializer on non-array %q", d.Name)
			}
			for _, e := range d.InitList {
				if err := c.expr(e); err != nil {
					return err
				}
			}
			if int32(len(d.InitList)) > d.Type.ArrayLen {
				return errf(d.Pos, "too many initializers for %q", d.Name)
			}
		}
		if (d.Type.Kind == KArray || d.Type.Kind == KStruct) && c.spawnDepth > 0 {
			return errf(d.Pos, "local %s %q in parallel code: virtual threads have no stack (registers or global memory only, paper §IV-D)", d.Type, d.Name)
		}
		if d.Type.Kind == KStruct && (d.Init != nil || d.InitList != nil) {
			return errf(d.Pos, "struct %q cannot have an initializer: assign members individually", d.Name)
		}
		sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Def: d}
		d.Sym = sym
		return c.declare(sym, d.Pos)
	case *ExprStmt:
		return c.expr(n.X)
	case *EmptyStmt:
		return nil
	case *IfStmt:
		if err := c.condExpr(n.Cond); err != nil {
			return err
		}
		if err := c.stmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.stmt(n.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.condExpr(n.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(n.Body)
	case *DoStmt:
		c.loopDepth++
		err := c.stmt(n.Body)
		c.loopDepth--
		if err != nil {
			return err
		}
		return c.condExpr(n.Cond)
	case *ForStmt:
		c.push()
		defer c.pop()
		if n.Init != nil {
			if err := c.stmt(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := c.condExpr(n.Cond); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if err := c.expr(n.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(n.Body)
	case *BreakStmt:
		if c.loopDepth == 0 && c.switchDepth == 0 {
			return errf(n.Pos, "break outside loop or switch")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(n.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if c.spawnDepth > 0 {
			return errf(n.Pos, "return inside a spawn block")
		}
		ret := c.curFunc.Ret
		if n.X == nil {
			if ret.Kind != KVoid {
				return errf(n.Pos, "return without value in function returning %s", ret)
			}
			return nil
		}
		if err := c.expr(n.X); err != nil {
			return err
		}
		if ret.Kind == KVoid {
			return errf(n.Pos, "return with value in void function")
		}
		if !ret.AssignableFrom(decay(n.X.TypeOf())) && !isNullToPtr(ret, n.X) {
			return errf(n.Pos, "cannot return %s from function returning %s", n.X.TypeOf(), ret)
		}
		return nil
	case *SwitchStmt:
		if err := c.expr(n.Tag); err != nil {
			return err
		}
		if !decay(n.Tag.TypeOf()).IsInteger() {
			return errf(n.Pos, "switch tag must be an integer, got %s", n.Tag.TypeOf())
		}
		seen := make(map[int32]bool)
		for _, cl := range n.Cases {
			for _, v := range cl.Values {
				if seen[v] {
					return errf(cl.Pos, "duplicate case value %d", v)
				}
				seen[v] = true
			}
		}
		c.switchDepth++
		c.push()
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				if err := c.stmt(st); err != nil {
					c.pop()
					c.switchDepth--
					return err
				}
			}
		}
		c.pop()
		c.switchDepth--
		return nil
	case *SpawnStmt:
		if err := c.expr(n.Low); err != nil {
			return err
		}
		if err := c.expr(n.High); err != nil {
			return err
		}
		if !n.Low.TypeOf().IsInteger() || !n.High.TypeOf().IsInteger() {
			return errf(n.Pos, "spawn bounds must be integers")
		}
		if c.spawnDepth > 0 {
			n.Serialize = true
			c.info.Warnings = append(c.info.Warnings, diag.Diagnostic{
				Check:    "nested-spawn",
				Severity: diag.Warning,
				Pos:      n.Pos.Diag(),
				Msg:      "nested spawn is serialized by the current toolchain release",
			})
		}
		c.spawnDepth++
		savedLoop := c.loopDepth
		savedSwitch := c.switchDepth
		c.loopDepth = 0 // break/continue cannot cross the spawn boundary
		c.switchDepth = 0
		err := c.stmt(n.Body)
		c.loopDepth = savedLoop
		c.switchDepth = savedSwitch
		c.spawnDepth--
		return err
	}
	return errf(s.GetPos(), "internal: unknown statement %T", s)
}

func (c *checker) condExpr(e Expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	if !decay(e.TypeOf()).IsScalar() {
		return errf(e.GetPos(), "condition must be scalar, got %s", e.TypeOf())
	}
	return nil
}

// decay converts array types to pointers for expression contexts.
func decay(t *Type) *Type {
	if t != nil && t.Kind == KArray {
		return PtrTo(t.Elem)
	}
	return t
}

func isNullToPtr(dst *Type, e Expr) bool {
	if dst.Kind != KPtr {
		return false
	}
	v, ok := FoldConst(e)
	return ok && v == 0
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch n := e.(type) {
	case *Ident:
		return n.Sym != nil && n.Sym.Kind != SymFunc && n.Sym.Type.Kind != KArray
	case *Index:
		return true
	case *Unary:
		return n.Op == MUL
	case *Member:
		return n.Arrow || isLvalue(n.X)
	}
	return false
}
