package xmtc

// Expression type checking and builtin resolution.

func (c *checker) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		n.setType(TypeInt)
		return nil
	case *FloatLit:
		n.setType(TypeFloat)
		return nil
	case *StringLit:
		n.setType(PtrTo(TypeChar))
		return nil
	case *TidExpr:
		if c.spawnDepth == 0 {
			return errf(n.Pos, "$ (virtual thread id) used outside a spawn block")
		}
		n.setType(TypeInt)
		return nil
	case *Ident:
		sym := c.lookup(n.Name)
		if sym == nil {
			return errf(n.Pos, "undeclared identifier %q", n.Name)
		}
		if sym.Kind == SymFunc {
			return errf(n.Pos, "function %q used as a value (function pointers are not supported)", n.Name)
		}
		n.Sym = sym
		n.setType(sym.Type)
		return nil
	case *Binary:
		return c.binary(n)
	case *Unary:
		return c.unary(n)
	case *Assign:
		return c.assign(n)
	case *IncDec:
		if err := c.expr(n.X); err != nil {
			return err
		}
		if !isLvalue(n.X) {
			return errf(n.Pos, "%s needs an lvalue", n.Op)
		}
		t := n.X.TypeOf()
		if !t.IsInteger() && t.Kind != KPtr {
			return errf(n.Pos, "%s needs an integer or pointer, got %s", n.Op, t)
		}
		n.setType(t)
		return nil
	case *Cond:
		if err := c.condExpr(n.C); err != nil {
			return err
		}
		if err := c.expr(n.T); err != nil {
			return err
		}
		if err := c.expr(n.F); err != nil {
			return err
		}
		tt, ft := decay(n.T.TypeOf()), decay(n.F.TypeOf())
		switch {
		case tt.IsArith() && ft.IsArith():
			if tt.Kind == KFloat || ft.Kind == KFloat {
				n.setType(TypeFloat)
			} else {
				n.setType(TypeInt)
			}
		case tt.Kind == KPtr && ft.Kind == KPtr:
			n.setType(tt)
		case tt.Kind == KPtr && isNullToPtr(tt, n.F):
			n.setType(tt)
		case ft.Kind == KPtr && isNullToPtr(ft, n.T):
			n.setType(ft)
		default:
			return errf(n.Pos, "incompatible ?: operands: %s and %s", tt, ft)
		}
		return nil
	case *Member:
		if err := c.expr(n.X); err != nil {
			return err
		}
		xt := n.X.TypeOf()
		if n.Arrow {
			if decay(xt).Kind != KPtr || decay(xt).Elem.Kind != KStruct {
				return errf(n.Pos, "-> needs a struct pointer, got %s", xt)
			}
			xt = decay(xt).Elem
		} else if xt.Kind != KStruct {
			return errf(n.Pos, ". needs a struct, got %s", xt)
		}
		fld := xt.FieldByName(n.Name)
		if fld == nil {
			return errf(n.Pos, "struct %s has no member %q", xt.StructName, n.Name)
		}
		if !n.Arrow && !isLvalue(n.X) {
			return errf(n.Pos, "member access on a non-lvalue struct")
		}
		n.Field = fld
		n.setType(fld.Type)
		return nil
	case *Index:
		if err := c.expr(n.X); err != nil {
			return err
		}
		if err := c.expr(n.I); err != nil {
			return err
		}
		xt := decay(n.X.TypeOf())
		if xt.Kind != KPtr {
			return errf(n.Pos, "indexing non-array/pointer %s", n.X.TypeOf())
		}
		if !n.I.TypeOf().IsInteger() {
			return errf(n.Pos, "array index must be integer, got %s", n.I.TypeOf())
		}
		n.setType(xt.Elem)
		return nil
	case *Cast:
		if err := c.expr(n.X); err != nil {
			return err
		}
		src := decay(n.X.TypeOf())
		dst := n.To
		ok := (dst.IsScalar() && src.IsScalar()) || dst.Kind == KVoid
		if !ok {
			return errf(n.Pos, "invalid cast from %s to %s", src, dst)
		}
		if (dst.Kind == KPtr && src.Kind == KFloat) || (dst.Kind == KFloat && src.Kind == KPtr) {
			return errf(n.Pos, "invalid cast between pointer and float")
		}
		n.setType(dst)
		return nil
	case *SizeofExpr:
		if n.OfExpr != nil {
			if err := c.expr(n.OfExpr); err != nil {
				return err
			}
		}
		n.setType(TypeInt)
		return nil
	case *Call:
		return c.call(n)
	}
	return errf(e.GetPos(), "internal: unknown expression %T", e)
}

func (c *checker) binary(n *Binary) error {
	if err := c.expr(n.X); err != nil {
		return err
	}
	if err := c.expr(n.Y); err != nil {
		return err
	}
	xt, yt := decay(n.X.TypeOf()), decay(n.Y.TypeOf())
	switch n.Op {
	case COMMA:
		n.setType(yt)
		return nil
	case OROR, ANDAND:
		if !xt.IsScalar() || !yt.IsScalar() {
			return errf(n.Pos, "%s needs scalar operands", n.Op)
		}
		n.setType(TypeInt)
		return nil
	case EQ, NE, LT, GT, LE, GE:
		okArith := xt.IsArith() && yt.IsArith()
		okPtr := xt.Kind == KPtr && yt.Kind == KPtr ||
			xt.Kind == KPtr && isNullToPtr(xt, n.Y) ||
			yt.Kind == KPtr && isNullToPtr(yt, n.X)
		if !okArith && !okPtr {
			return errf(n.Pos, "invalid comparison between %s and %s", xt, yt)
		}
		n.setType(TypeInt)
		return nil
	case ADD:
		if xt.Kind == KPtr && yt.IsInteger() {
			n.setType(xt)
			return nil
		}
		if yt.Kind == KPtr && xt.IsInteger() {
			n.setType(yt)
			return nil
		}
	case SUB:
		if xt.Kind == KPtr && yt.IsInteger() {
			n.setType(xt)
			return nil
		}
		if xt.Kind == KPtr && yt.Kind == KPtr {
			if !xt.Elem.Same(yt.Elem) {
				return errf(n.Pos, "subtracting incompatible pointers")
			}
			n.setType(TypeInt)
			return nil
		}
	}
	// Arithmetic and bitwise operators.
	if !xt.IsArith() || !yt.IsArith() {
		return errf(n.Pos, "invalid operands to %s: %s and %s", n.Op, xt, yt)
	}
	isFloat := xt.Kind == KFloat || yt.Kind == KFloat
	switch n.Op {
	case REM, AND, OR, XOR, SHL, SHR:
		if isFloat {
			return errf(n.Pos, "%s needs integer operands", n.Op)
		}
	}
	if isFloat {
		n.setType(TypeFloat)
	} else if xt.Kind == KUnsigned || yt.Kind == KUnsigned {
		n.setType(TypeUnsigned)
	} else {
		n.setType(TypeInt)
	}
	return nil
}

func (c *checker) unary(n *Unary) error {
	if err := c.expr(n.X); err != nil {
		return err
	}
	xt := decay(n.X.TypeOf())
	switch n.Op {
	case SUB:
		if !xt.IsArith() {
			return errf(n.Pos, "negating %s", xt)
		}
		n.setType(xt)
	case NOT:
		if !xt.IsScalar() {
			return errf(n.Pos, "! needs a scalar")
		}
		n.setType(TypeInt)
	case TILDE:
		if !xt.IsInteger() {
			return errf(n.Pos, "~ needs an integer")
		}
		n.setType(xt)
	case MUL:
		if xt.Kind != KPtr {
			return errf(n.Pos, "dereferencing non-pointer %s", xt)
		}
		if xt.Elem.Kind == KVoid {
			return errf(n.Pos, "dereferencing void*")
		}
		n.setType(xt.Elem)
	case AND:
		switch x := n.X.(type) {
		case *Ident:
			if x.Sym == nil || x.Sym.Kind == SymFunc {
				return errf(n.Pos, "cannot take the address of %q", x.Name)
			}
			// Taking the address of arrays yields a pointer to the element.
			if x.Sym.Type.Kind == KArray {
				n.setType(PtrTo(x.Sym.Type.Elem))
			} else {
				n.setType(PtrTo(x.Sym.Type))
			}
		case *Index:
			n.setType(PtrTo(x.TypeOf()))
		case *Member:
			if !isLvalue(x) {
				return errf(n.Pos, "& needs an lvalue")
			}
			n.setType(PtrTo(x.TypeOf()))
		case *Unary:
			if x.Op != MUL {
				return errf(n.Pos, "& needs an lvalue")
			}
			n.setType(PtrTo(x.TypeOf()))
		default:
			return errf(n.Pos, "& needs an lvalue")
		}
	default:
		return errf(n.Pos, "internal: unary %s", n.Op)
	}
	return nil
}

func (c *checker) assign(n *Assign) error {
	if err := c.expr(n.LHS); err != nil {
		return err
	}
	if err := c.expr(n.RHS); err != nil {
		return err
	}
	if !isLvalue(n.LHS) {
		return errf(n.Pos, "assignment needs an lvalue")
	}
	lt := n.LHS.TypeOf()
	rt := decay(n.RHS.TypeOf())
	if lt.Kind == KArray {
		return errf(n.Pos, "cannot assign to an array")
	}
	if lt.Kind == KStruct || rt.Kind == KStruct {
		return errf(n.Pos, "whole-struct assignment is not supported: copy members individually")
	}
	if n.Op == ASSIGN {
		if !lt.AssignableFrom(rt) && !isNullToPtr(lt, n.RHS) {
			return errf(n.Pos, "cannot assign %s to %s", rt, lt)
		}
	} else {
		// Compound assignment: lhs op rhs must be valid arithmetic (or
		// pointer += int for ADDA/SUBA).
		ptrOK := lt.Kind == KPtr && rt.IsInteger() && (n.Op == ADDA || n.Op == SUBA)
		if !ptrOK {
			if !lt.IsArith() || !rt.IsArith() {
				return errf(n.Pos, "invalid compound assignment between %s and %s", lt, rt)
			}
			switch n.Op {
			case REMA, ANDA, ORA, XORA, SHLA, SHRA:
				if lt.Kind == KFloat || rt.Kind == KFloat {
					return errf(n.Pos, "integer compound assignment on float")
				}
			}
		}
	}
	n.setType(lt)
	return nil
}

// builtinByName maps source names to builtin IDs.
var builtinByName = map[string]Builtin{
	"ps":           BuiltinPs,
	"psm":          BuiltinPsm,
	"print_int":    BuiltinPrintInt,
	"printint":     BuiltinPrintInt,
	"print_float":  BuiltinPrintFloat,
	"print_char":   BuiltinPrintChar,
	"print_string": BuiltinPrintString,
	"xmt_cycle":    BuiltinCycle,
	"malloc":       BuiltinMalloc,
	"checkpoint":   BuiltinCheckpoint,
	"xmt_prefetch": BuiltinPrefetch,
	"xmt_ro_read":  BuiltinReadOnly,
}

func (c *checker) call(n *Call) error {
	if b, ok := builtinByName[n.Name]; ok {
		if c.lookup(n.Name) == nil { // user may shadow a builtin name
			n.Builtin = b
			return c.builtin(n)
		}
	}
	sym := c.lookup(n.Name)
	if sym == nil {
		return errf(n.Pos, "call to undeclared function %q", n.Name)
	}
	if sym.Kind != SymFunc {
		return errf(n.Pos, "%q is not a function", n.Name)
	}
	if c.spawnDepth > 0 {
		return errf(n.Pos, "function call %q in parallel code: the parallel cactus-stack is not in this release (paper §IV-E)", n.Name)
	}
	ft := sym.Type
	if len(n.Args) != len(ft.Params) {
		return errf(n.Pos, "%q expects %d arguments, got %d", n.Name, len(ft.Params), len(n.Args))
	}
	for i, a := range n.Args {
		if err := c.expr(a); err != nil {
			return err
		}
		if !ft.Params[i].AssignableFrom(decay(a.TypeOf())) && !isNullToPtr(ft.Params[i], a) {
			return errf(a.GetPos(), "argument %d of %q: cannot pass %s as %s", i+1, n.Name, a.TypeOf(), ft.Params[i])
		}
	}
	n.Sym = sym
	n.setType(ft.Ret)
	return nil
}

func (c *checker) builtin(n *Call) error {
	for _, a := range n.Args {
		if err := c.expr(a); err != nil {
			return err
		}
	}
	argc := func(want int) error {
		if len(n.Args) != want {
			return errf(n.Pos, "%s expects %d argument(s), got %d", n.Name, want, len(n.Args))
		}
		return nil
	}
	switch n.Builtin {
	case BuiltinPs:
		if err := argc(2); err != nil {
			return err
		}
		inc, ok := n.Args[0].(*Ident)
		if !ok || inc.Sym == nil || (inc.Sym.Kind != SymLocal && inc.Sym.Kind != SymParam) || !inc.Sym.Type.IsInteger() {
			return errf(n.Pos, "ps increment must be a local integer variable")
		}
		baseI, ok := n.Args[1].(*Ident)
		if !ok || baseI.Sym == nil || baseI.Sym.Kind != SymGlobal || !baseI.Sym.Type.IsInteger() {
			return errf(n.Pos, "ps base must be a global integer variable (use psm for arbitrary memory locations)")
		}
		if baseI.Sym.Type.Volatile {
			return errf(n.Pos, "ps base cannot be volatile (it lives in a global register)")
		}
		if !baseI.Sym.PsBase {
			if len(c.info.PsBases) >= 62 {
				return errf(n.Pos, "too many distinct ps bases: only %d global registers available (use psm)", 62)
			}
			baseI.Sym.PsBase = true
			baseI.Sym.GReg = uint8(len(c.info.PsBases))
			c.info.PsBases = append(c.info.PsBases, baseI.Sym)
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinPsm:
		if err := argc(2); err != nil {
			return err
		}
		inc, ok := n.Args[0].(*Ident)
		if !ok || inc.Sym == nil || (inc.Sym.Kind != SymLocal && inc.Sym.Kind != SymParam) || !inc.Sym.Type.IsInteger() {
			return errf(n.Pos, "psm increment must be a local integer variable")
		}
		if !isLvalue(n.Args[1]) || !n.Args[1].TypeOf().IsInteger() {
			return errf(n.Pos, "psm base must be an integer lvalue")
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinPrintInt, BuiltinPrintChar:
		if err := argc(1); err != nil {
			return err
		}
		if !decay(n.Args[0].TypeOf()).IsInteger() && decay(n.Args[0].TypeOf()).Kind != KPtr {
			return errf(n.Pos, "%s expects an integer", n.Name)
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinPrintFloat:
		if err := argc(1); err != nil {
			return err
		}
		if !decay(n.Args[0].TypeOf()).IsArith() {
			return errf(n.Pos, "print_float expects a number")
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinPrintString:
		if err := argc(1); err != nil {
			return err
		}
		t := decay(n.Args[0].TypeOf())
		if t.Kind != KPtr || t.Elem.Kind != KChar {
			return errf(n.Pos, "print_string expects a char*")
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinCycle:
		if err := argc(0); err != nil {
			return err
		}
		n.setType(TypeInt)
		return nil
	case BuiltinMalloc:
		if err := argc(1); err != nil {
			return err
		}
		if c.spawnDepth > 0 {
			return errf(n.Pos, "malloc in parallel code: dynamic memory allocation is currently supported only in serial code (paper §IV-D)")
		}
		if !decay(n.Args[0].TypeOf()).IsInteger() {
			return errf(n.Pos, "malloc expects a size in bytes")
		}
		n.setType(PtrTo(TypeVoid))
		return nil
	case BuiltinCheckpoint:
		if err := argc(0); err != nil {
			return err
		}
		if c.spawnDepth > 0 {
			return errf(n.Pos, "checkpoint() must be called from serial code")
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinPrefetch:
		if err := argc(1); err != nil {
			return err
		}
		if decay(n.Args[0].TypeOf()).Kind != KPtr {
			return errf(n.Pos, "xmt_prefetch expects an address")
		}
		n.setType(TypeVoid)
		return nil
	case BuiltinReadOnly:
		if err := argc(1); err != nil {
			return err
		}
		t := decay(n.Args[0].TypeOf())
		if t.Kind != KPtr || !t.Elem.IsInteger() {
			return errf(n.Pos, "xmt_ro_read expects an int*")
		}
		n.setType(TypeInt)
		return nil
	}
	return errf(n.Pos, "internal: unknown builtin %q", n.Name)
}
