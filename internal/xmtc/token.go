// Package xmtc implements the front end of the XMTC compiler: lexer,
// parser, abstract syntax tree and semantic analysis for the XMTC language
// — "a modest single-program multiple-data (SPMD) parallel extension of C
// with serial and parallel execution modes" (paper §II-A). The extensions
// over the supported C subset are the spawn statement, the virtual
// thread-id expression $, and the prefix-sum primitives ps and psm.
package xmtc

import (
	"fmt"

	"xmtgo/internal/diag"
)

// Tok is a lexical token kind.
type Tok uint8

const (
	EOF Tok = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT
	STRINGLIT
	DOLLAR // $

	// Keywords.
	KwInt
	KwUnsigned
	KwFloat
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwBreak
	KwContinue
	KwReturn
	KwSpawn
	KwVolatile
	KwConst
	KwSizeof
	KwStruct
	KwSwitch
	KwCase
	KwDefault
	KwBool  // accepted as int
	KwTrue  // 1
	KwFalse // 0

	// Punctuation and operators.
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACK
	RBRACK
	SEMI
	COMMA
	QUESTION
	COLON

	ASSIGN // =
	ADDA   // +=
	SUBA   // -=
	MULA   // *=
	DIVA   // /=
	REMA   // %=
	ANDA   // &=
	ORA    // |=
	XORA   // ^=
	SHLA   // <<=
	SHRA   // >>=

	OROR   // ||
	ANDAND // &&
	OR     // |
	XOR    // ^
	AND    // &
	EQ     // ==
	NE     // !=
	LT     // <
	GT     // >
	LE     // <=
	GE     // >=
	SHL    // <<
	SHR    // >>
	ADD    // +
	SUB    // -
	MUL    // *
	DIV    // /
	REM    // %
	NOT    // !
	TILDE  // ~
	INC    // ++
	DEC    // --
	DOT    // .
	ARROW  // ->
)

var tokNames = map[Tok]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", CHARLIT: "char literal", STRINGLIT: "string literal",
	DOLLAR: "$",
	KwInt:  "int", KwUnsigned: "unsigned", KwFloat: "float", KwChar: "char",
	KwVoid: "void", KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwDo: "do", KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwSpawn: "spawn", KwVolatile: "volatile", KwConst: "const", KwSizeof: "sizeof",
	KwBool: "bool", KwTrue: "true", KwFalse: "false", KwStruct: "struct",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	SEMI: ";", COMMA: ",", QUESTION: "?", COLON: ":",
	ASSIGN: "=", ADDA: "+=", SUBA: "-=", MULA: "*=", DIVA: "/=", REMA: "%=",
	ANDA: "&=", ORA: "|=", XORA: "^=", SHLA: "<<=", SHRA: ">>=",
	OROR: "||", ANDAND: "&&", OR: "|", XOR: "^", AND: "&",
	EQ: "==", NE: "!=", LT: "<", GT: ">", LE: "<=", GE: ">=",
	SHL: "<<", SHR: ">>", ADD: "+", SUB: "-", MUL: "*", DIV: "/", REM: "%",
	NOT: "!", TILDE: "~", INC: "++", DEC: "--", DOT: ".", ARROW: "->",
}

func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tok(%d)", uint8(t))
}

var keywords = map[string]Tok{
	"int": KwInt, "unsigned": KwUnsigned, "float": KwFloat, "char": KwChar,
	"void": KwVoid, "if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"do": KwDo, "break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"spawn": KwSpawn, "volatile": KwVolatile, "const": KwConst, "sizeof": KwSizeof,
	"bool": KwBool, "true": KwTrue, "false": KwFalse, "struct": KwStruct,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Diag converts to the shared diagnostics position type.
func (p Pos) Diag() diag.Pos { return diag.Pos{File: p.File, Line: p.Line, Col: p.Col} }

// Token is one lexed token.
type Token struct {
	Kind Tok
	Pos  Pos
	Text string  // IDENT, STRINGLIT raw content
	Int  int64   // INTLIT, CHARLIT
	Flt  float64 // FLOATLIT
}

// Error is a front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
