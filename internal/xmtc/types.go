package xmtc

import "fmt"

// Kind discriminates XMTC types.
type Kind uint8

const (
	KVoid Kind = iota
	KInt
	KUnsigned
	KFloat
	KChar
	KPtr
	KArray
	KFunc
	KStruct
)

// Type is an XMTC type. Types are treated structurally.
type Type struct {
	Kind     Kind
	Elem     *Type // KPtr, KArray
	ArrayLen int32 // KArray
	Volatile bool

	structSize int32 // cached layout size for KStruct

	// KFunc
	Params []*Type
	Ret    *Type

	// KStruct
	StructName string
	Fields     []*Field
}

// Field is one member of a struct type, with its computed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int32
}

// FieldByName returns the named member, or nil.
func (t *Type) FieldByName(name string) *Field {
	if t.Kind != KStruct {
		return nil
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NewStruct builds a struct type, laying out the fields with natural
// alignment.
func NewStruct(name string, fields []*Field) *Type {
	t := &Type{Kind: KStruct, StructName: name}
	t.LayoutStruct(fields)
	return t
}

// LayoutStruct installs and lays out the members of a (possibly
// forward-declared) struct type. Self-referential members are only legal
// through pointers; the parser checks that before calling.
func (t *Type) LayoutStruct(fields []*Field) {
	t.Fields = fields
	off := int32(0)
	for _, f := range fields {
		a := f.Type.Align()
		off = (off + a - 1) &^ (a - 1)
		f.Offset = off
		off += f.Type.Size()
	}
	t.structSize = (off + 3) &^ 3
	if t.structSize == 0 {
		t.structSize = 4
	}
}

// ContainsByValue reports whether t (an aggregate) embeds other by value —
// used to reject recursive struct members.
func (t *Type) ContainsByValue(other *Type) bool {
	switch t.Kind {
	case KArray:
		return t.Elem.ContainsByValue(other)
	case KStruct:
		if t == other {
			return true
		}
		for _, f := range t.Fields {
			if f.Type.ContainsByValue(other) {
				return true
			}
		}
	}
	return t == other
}

// Singleton base types.
var (
	TypeVoid     = &Type{Kind: KVoid}
	TypeInt      = &Type{Kind: KInt}
	TypeUnsigned = &Type{Kind: KUnsigned}
	TypeFloat    = &Type{Kind: KFloat}
	TypeChar     = &Type{Kind: KChar}
)

// PtrTo returns a pointer type.
func PtrTo(t *Type) *Type { return &Type{Kind: KPtr, Elem: t} }

// ArrayOf returns an array type.
func ArrayOf(t *Type, n int32) *Type { return &Type{Kind: KArray, Elem: t, ArrayLen: n} }

// Size returns the storage size in bytes.
func (t *Type) Size() int32 {
	switch t.Kind {
	case KVoid:
		return 0
	case KChar:
		return 1
	case KArray:
		return t.Elem.Size() * t.ArrayLen
	case KStruct:
		return t.structSize
	default:
		return 4
	}
}

// Align returns the required alignment.
func (t *Type) Align() int32 {
	switch t.Kind {
	case KChar:
		return 1
	case KArray:
		return t.Elem.Align()
	case KStruct:
		return 4
	default:
		return 4
	}
}

// IsInteger reports int/unsigned/char.
func (t *Type) IsInteger() bool {
	return t.Kind == KInt || t.Kind == KUnsigned || t.Kind == KChar
}

// IsArith reports integer or float.
func (t *Type) IsArith() bool { return t.IsInteger() || t.Kind == KFloat }

// IsScalar reports arithmetic or pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == KPtr }

// Same reports structural type equality (ignoring volatile).
func (t *Type) Same(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KPtr:
		return t.Elem.Same(o.Elem)
	case KArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Same(o.Elem)
	case KFunc:
		if len(t.Params) != len(o.Params) || !t.Ret.Same(o.Ret) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(o.Params[i]) {
				return false
			}
		}
	case KStruct:
		return t.StructName == o.StructName
	}
	return true
}

// AssignableFrom reports whether a value of type src may be assigned to t
// (with the usual C-subset conversions: arithmetic conversions, array decay
// handled by the caller, pointer compatibility, void* wildcards).
func (t *Type) AssignableFrom(src *Type) bool {
	if t.IsArith() && src.IsArith() {
		return true
	}
	if t.Kind == KPtr && src.Kind == KPtr {
		return t.Elem.Same(src.Elem) || t.Elem.Kind == KVoid || src.Elem.Kind == KVoid
	}
	// Integer 0 to pointer is handled in sema (null constant).
	return t.Same(src)
}

func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KUnsigned:
		return "unsigned"
	case KFloat:
		return "float"
	case KChar:
		return "char"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case KFunc:
		s := t.Ret.String() + " ("
		for i, p := range t.Params {
			if i > 0 {
				s += ", "
			}
			s += p.String()
		}
		return s + ")"
	case KStruct:
		return "struct " + t.StructName
	}
	return "?"
}
