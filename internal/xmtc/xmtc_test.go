package xmtc

import (
	"strings"
	"testing"
	"testing/quick"

	"xmtgo/internal/diag"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func check(t *testing.T, src string) (*File, *Info, error) {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		return nil, nil, err
	}
	info, err := Check(f)
	return f, info, err
}

func TestLexer(t *testing.T) {
	toks, err := LexAll("t.c", `int x = 0x1f + 2.5f - 'a'; // comment
/* block
comment */ $ "str\n" <<= >>= && ||`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Tok
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Tok{KwInt, IDENT, ASSIGN, INTLIT, ADD, FLOATLIT, SUB, INTLIT, SEMI,
		DOLLAR, STRINGLIT, SHLA, SHRA, ANDAND, OROR, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Int != 0x1f || toks[5].Flt != 2.5 || toks[7].Int != 'a' {
		t.Fatal("literal values wrong")
	}
	if toks[10].Text != "str\n" {
		t.Fatalf("string = %q", toks[10].Text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"`", `"unterminated`, "'x", "/* open", `"\q"`} {
		if _, err := LexAll("t.c", src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		"int main( {}",
		"int main() { if }",
		"int main() { x = ; }",
		"int main() { spawn(0) {} }",
		"int main() { for (;;) }",
		"int main() { int a[]; }",
		"int main() { return 1 }",
		"int 5x;",
		"int main() { do x=1; while 1; }",
	}
	for _, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"no main":           `int foo() { return 0; }`,
		"undeclared":        `int main() { return x; }`,
		"redeclared":        `int main() { int a; int a; return 0; }`,
		"void var":          `void v; int main() { return 0; }`,
		"call undeclared":   `int main() { frob(); return 0; }`,
		"arg count":         `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"arg type":          `int f(int *p) { return *p; } int main() { return f(1); }`,
		"$ outside spawn":   `int main() { return $; }`,
		"return in spawn":   `int main() { spawn(0, 1) { return; } return 0; }`,
		"break over spawn":  `int main() { while (1) { spawn(0, 1) { break; } } return 0; }`,
		"call in spawn":     `int f() { return 1; } int main() { spawn(0, 1) { int x = f(); } return 0; }`,
		"malloc in spawn":   `int main() { spawn(0, 1) { int *p = (int*)malloc(4); } return 0; }`,
		"array in spawn":    `int main() { spawn(0, 1) { int a[4]; } return 0; }`,
		"ps non-global":     `int main() { int inc = 1, base = 0; spawn(0,1){ } ps(inc, base); return 0; }`,
		"ps literal inc":    `int g; int main() { ps(1, g); return 0; }`,
		"ps volatile":       `volatile int g; int main() { int i = 1; ps(i, g); return 0; }`,
		"psm non-lvalue":    `int main() { int i = 1; psm(i, 5); return 0; }`,
		"assign to array":   `int a[3]; int b[3]; int main() { a = b; return 0; }`,
		"assign rvalue":     `int main() { 5 = 3; return 0; }`,
		"bad cast":          `float f; int main() { int *p = (int*)f; return 0; }`,
		"deref non-ptr":     `int main() { int x = 1; return *x; }`,
		"index non-array":   `int main() { int x = 1; return x[0]; }`,
		"float shift":       `int main() { float f = 1.0; int x = 1 << f; return 0; }`,
		"void return value": `void f() { return 1; } int main() { return 0; }`,
		"missing return":    `int f() { return; } int main() { return 0; }`,
		"redefined func":    `int main() { return 0; } int main() { return 1; }`,
		"conflicting proto": `int f(int a); float f(int a) { return 0.0; } int main() { return 0; }`,
		"spawn float":       `int main() { spawn(0.5, 1) { } return 0; }`,
		"func as value":     `int f() { return 1; } int main() { return f + 1; }`,
		"brace non-array":   `int x = {1, 2}; int main() { return 0; }`,
		"too many inits":    `int a[2] = {1, 2, 3}; int main() { return 0; }`,
		"nonconst global":   `int f() { return 1; } int g = f(); int main() { return 0; }`,
	}
	for name, src := range cases {
		if _, _, err := check(t, src); err == nil {
			t.Errorf("%s: expected a semantic error", name)
		}
	}
}

func TestSemaPsBaseAllocation(t *testing.T) {
	_, info, err := check(t, `
int a = 5;
int b;
int main() {
    int i = 1;
    spawn(0, 3) {
        int inc = 1;
        ps(inc, a);
        ps(inc, b);
        ps(inc, a);
    }
    i = i;
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.PsBases) != 2 {
		t.Fatalf("ps bases = %d, want 2", len(info.PsBases))
	}
	if info.PsBases[0].Name != "a" || info.PsBases[0].GReg != 0 {
		t.Fatalf("first base %+v", info.PsBases[0])
	}
	if info.PsBases[1].GReg != 1 {
		t.Fatal("second base register")
	}
}

func TestNestedSpawnWarning(t *testing.T) {
	_, info, err := check(t, `
int main() {
    spawn(0, 1) {
        spawn(0, 1) { int x = $; }
    }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Warnings) != 1 || !strings.Contains(info.Warnings[0].Msg, "serialized") {
		t.Fatalf("warnings = %v", info.Warnings)
	}
	if w := info.Warnings[0]; w.Pos.Line != 4 || w.Check != "nested-spawn" || w.Severity != diag.Warning {
		t.Fatalf("warning not structured: %+v", w)
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int32
	}{
		{TypeInt, 4}, {TypeChar, 1}, {TypeFloat, 4},
		{PtrTo(TypeChar), 4},
		{ArrayOf(TypeInt, 10), 40},
		{ArrayOf(ArrayOf(TypeInt, 3), 2), 24},
		{ArrayOf(TypeChar, 7), 7},
	}
	for _, c := range cases {
		if c.t.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.t, c.t.Size(), c.size)
		}
	}
}

func TestTypeCompatibility(t *testing.T) {
	if !TypeInt.AssignableFrom(TypeFloat) || !TypeFloat.AssignableFrom(TypeChar) {
		t.Error("arithmetic conversions must be allowed")
	}
	vp := PtrTo(TypeVoid)
	ip := PtrTo(TypeInt)
	if !vp.AssignableFrom(ip) || !ip.AssignableFrom(vp) {
		t.Error("void* wildcard broken")
	}
	if ip.AssignableFrom(PtrTo(TypeFloat)) {
		t.Error("incompatible pointers must be rejected")
	}
	if !ip.Same(PtrTo(TypeInt)) || ip.Same(vp) {
		t.Error("Same broken")
	}
}

// Property: FoldConst agrees with Go's evaluation on random (a op b).
func TestFoldConstProperty(t *testing.T) {
	mk := func(op Tok, a, b int32) Expr {
		x := &IntLit{Val: int64(a)}
		y := &IntLit{Val: int64(b)}
		return &Binary{Op: op, X: x, Y: y}
	}
	f := func(a, b int32, opSel uint8) bool {
		ops := []Tok{ADD, SUB, MUL, AND, OR, XOR, SHL, SHR}
		op := ops[int(opSel)%len(ops)]
		got, ok := FoldConst(mk(op, a, b))
		if !ok {
			return false
		}
		var want int32
		switch op {
		case ADD:
			want = a + b
		case SUB:
			want = a - b
		case MUL:
			want = a * b
		case AND:
			want = a & b
		case OR:
			want = a | b
		case XOR:
			want = a ^ b
		case SHL:
			want = a << uint(b&31)
		case SHR:
			want = a >> uint(b&31)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRoundTripParses(t *testing.T) {
	f := mustParse(t, `
struct Pt { int x; int y; };
struct Pt origin;
int N = 8;
int A[8] = {1, 2, 3};
float pi = 3.14;
int sum(int *p, int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
int classify(int v) {
    switch (v) {
    case 0: return 1;
    case 2:
    case 3: return 5;
    default: return -1;
    }
}
int main() {
    origin.x = 1;
    struct Pt *pp = &origin;
    pp->y = classify(origin.x);
    int found = 0;
    spawn(0, N - 1) {
        int inc = 1;
        if (A[$] > 0) found = $ > 2 ? 1 : 0;
    }
    while (found) { found--; continue; }
    do { found++; } while (found < 0);
    print_string("done\n");
    return sum(A, N);
}`)
	if _, err := Check(f); err != nil {
		t.Fatal(err)
	}
	text := Render(f)
	f2, err := Parse("rendered.c", text)
	if err != nil {
		t.Fatalf("rendered source does not reparse: %v\n%s", err, text)
	}
	if _, err := Check(f2); err != nil {
		t.Fatalf("rendered source does not recheck: %v\n%s", err, text)
	}
}
