// Window-boundary determinism: the bounded-lookahead engine (multi-cycle
// windows, docs/PERF.md) must be architecturally invisible. Every artifact
// the host-parallel determinism contract covers — results, program output,
// statistics, Chrome traces, telemetry, race reports — must be byte-identical
// across every combination of host worker count, lookahead window size
// (single-cycle legacy, a deliberately awkward odd width, the derived
// window) and the optimistic rollback mode. Checkpoint/resume must land on
// the same architectural state even when the checkpoint period does not
// divide the window width, i.e. when the stop falls mid-window.
package xmtgo_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"xmtgo"
	"xmtgo/internal/workloads"
)

// lookaheadCorpus is a focused subset of the determinism corpus: the two
// parallel Table I groups stress the cache/ICN request loop (short windows,
// frequent truncation), compaction adds data-dependent ps traffic, and the
// chip1024 case exercises window commits across 64 sharded clusters.
func lookaheadCorpus(t *testing.T) []detCase {
	t.Helper()
	fpga := xmtgo.ConfigFPGA64()
	chip := xmtgo.ConfigChip1024()
	threads := fpga.Clusters * fpga.TCUsPerCluster

	comp, _ := workloads.Compaction(256, 0.3, 7)
	return []detCase{
		{name: "tableI-parmem", src: workloads.TableI(workloads.ParallelMemory, threads, 8), cfg: fpga},
		{name: "tableI-parcomp", src: workloads.TableI(workloads.ParallelCompute, threads, 8), cfg: fpga},
		{name: "compaction", src: comp, cfg: fpga},
		{name: "parmem-chip1024",
			src: workloads.TableI(workloads.ParallelMemory, chip.Clusters*chip.TCUsPerCluster, 4), cfg: chip},
	}
}

// engineVariants enumerates the engine configurations under test. lookahead=1
// restores the legacy single-cycle engine and serves as the reference;
// lookahead=3 forces windows that never align with the derived width;
// lookahead=0 derives the window from the minimum cross-cluster latency;
// optimistic free-runs and rolls back on overrun.
type engineVariant struct {
	name      string
	lookahead int
	mode      string
}

func engineVariants() []engineVariant {
	return []engineVariant{
		{"single-cycle", 1, ""},
		{"window-3", 3, ""},
		{"window-derived", 0, ""},
		{"optimistic", 0, "optimistic"},
	}
}

func TestLookaheadDeterminism(t *testing.T) {
	for _, tc := range lookaheadCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			refCase := tc
			refCase.cfg.Lookahead = 1
			ref := runWorkers(t, refCase, 1)
			if !ref.res.Halted {
				t.Fatalf("reference run did not halt (cycles=%d)", ref.res.Cycles)
			}
			for _, v := range engineVariants() {
				for _, w := range []int{1, 2, 4} {
					vc := tc
					vc.cfg.Lookahead = v.lookahead
					vc.cfg.EngineMode = v.mode
					r := runWorkers(t, vc, w)
					id := fmt.Sprintf("%s/workers=%d", v.name, w)
					if *r.res != *ref.res {
						t.Errorf("%s: result %+v != reference %+v", id, *r.res, *ref.res)
					}
					if r.out != ref.out {
						t.Errorf("%s: program output diverged:\n%q\nvs reference\n%q", id, r.out, ref.out)
					}
					if !reflect.DeepEqual(r.stats, ref.stats) {
						t.Errorf("%s: statistics diverged from reference", id)
					}
					if r.trace != ref.trace {
						t.Errorf("%s: Chrome trace JSON diverged (%d vs %d bytes)",
							id, len(r.trace), len(ref.trace))
					}
					if r.counters != ref.counters {
						t.Errorf("%s: counter report diverged", id)
					}
					if r.samples != ref.samples {
						t.Errorf("%s: interval-sample JSONL diverged (%d vs %d bytes)",
							id, len(r.samples), len(ref.samples))
					}
					if r.countersJSON != ref.countersJSON {
						t.Errorf("%s: counters JSON diverged", id)
					}
					if r.prom != ref.prom {
						t.Errorf("%s: Prometheus rendering diverged", id)
					}
					if r.raceReport != ref.raceReport {
						t.Errorf("%s: xmtsan report diverged", id)
					}
				}
			}
		})
	}
}

// TestOptimisticRollbackOccurs pins down that the optimistic determinism
// coverage above is not vacuous: on a memory-bound workload the free-running
// clusters must actually overrun arriving cache responses and roll back, and
// the run must still match the lockstep engine cycle-for-cycle.
func TestOptimisticRollbackOccurs(t *testing.T) {
	cfg := xmtgo.ConfigFPGA64()
	threads := cfg.Clusters * cfg.TCUsPerCluster
	src := workloads.TableI(workloads.ParallelMemory, threads, 8)
	prog, _, err := xmtgo.Build("parmem.c", src, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode string) (*xmtgo.SimResult, uint64) {
		c := cfg
		c.EngineMode = mode
		sys, err := xmtgo.NewSimulator(prog, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(2_000_000)
		if err != nil || !res.Halted {
			t.Fatalf("mode=%q: halted=%v err=%v", mode, res != nil && res.Halted, err)
		}
		return res, sys.Rollbacks()
	}

	wRes, wRoll := run(xmtgo.EngineWindowed)
	oRes, oRoll := run(xmtgo.EngineOptimistic)
	if wRoll != 0 {
		t.Errorf("windowed engine reported %d rollbacks; conservative windows never roll back", wRoll)
	}
	if oRoll == 0 {
		t.Error("optimistic run reported zero rollbacks; the rollback path went unexercised")
	}
	if *oRes != *wRes {
		t.Errorf("optimistic result %+v != windowed %+v", *oRes, *wRes)
	}
}

// TestLookaheadCheckpointResume chops a run into periodic-checkpoint segments
// whose period is coprime to the lookahead window, so every stop lands
// mid-window, and verifies the resumed runs reach the same architectural
// state as an uninterrupted single-cycle run — for the derived conservative
// window and for the optimistic engine.
func TestLookaheadCheckpointResume(t *testing.T) {
	red, _, _ := workloads.Reduction(512)
	prog, _, err := xmtgo.Build("reduction.c", red, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}

	base := xmtgo.ConfigFPGA64()
	base.Lookahead = 1
	var refOut bytes.Buffer
	ref, err := xmtgo.NewSimulator(prog, base, &refOut)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(10_000_000)
	if err != nil || !refRes.Halted {
		t.Fatalf("reference run: halted=%v err=%v", refRes != nil && refRes.Halted, err)
	}

	for _, v := range []engineVariant{
		{"window-derived", 0, ""},
		{"optimistic", 0, "optimistic"},
	} {
		t.Run(v.name, func(t *testing.T) {
			cfg := xmtgo.ConfigFPGA64()
			cfg.Lookahead = v.lookahead
			cfg.EngineMode = v.mode
			// Derived window for fpga64 is an even number of cycles; an odd
			// checkpoint period guarantees stops fall mid-window. Keep it
			// well under the run length so several segments occur.
			period := refRes.Cycles/5 | 1

			var out bytes.Buffer
			segments := 0
			var st *xmtgo.Checkpoint
			for {
				sys, err := xmtgo.NewSimulator(prog, cfg, &out)
				if err != nil {
					t.Fatal(err)
				}
				if st != nil {
					if err := sys.RestoreState(st); err != nil {
						t.Fatalf("segment %d: restore: %v", segments, err)
					}
				}
				sys.CheckpointEvery(period)
				res, err := sys.Run(10_000_000)
				if err != nil {
					t.Fatalf("segment %d: %v", segments, err)
				}
				segments++
				if res.Checkpoint {
					var buf bytes.Buffer
					if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
						t.Fatal(err)
					}
					if st, err = xmtgo.LoadCheckpoint(&buf); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if !res.Halted {
					t.Fatalf("segment %d stopped without halting: %+v", segments, res)
				}
				if out.String() != refOut.String() {
					t.Errorf("output %q, reference %q", out.String(), refOut.String())
				}
				if sys.Machine.G != ref.Machine.G {
					t.Error("global registers diverged from the uninterrupted run")
				}
				if *sys.MasterContext() != *ref.MasterContext() {
					t.Error("master context diverged from the uninterrupted run")
				}
				if !bytes.Equal(sys.Machine.Mem, ref.Machine.Mem) {
					t.Error("memory diverged from the uninterrupted run")
				}
				break
			}
			if segments < 2 {
				t.Fatalf("run never hit a periodic checkpoint (%d segments); mid-window resume untested", segments)
			}
		})
	}
}
