// Golden tests for the observability surface: the Chrome trace-event JSON
// and the hardware counter report for a fixed fixture program are compared
// byte-for-byte against checked-in files, at host_workers 1 and 4. Any
// change to event ordering, counter arithmetic, or report formatting shows
// up as a diff here; deliberate changes are re-blessed with
//
//	go test -run TestObservabilityGolden -update .
package xmtgo_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xmtgo"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

var update = flag.Bool("update", false, "rewrite the observability golden files")

// runFixture runs testdata/observability/fixture.c on fpga64 with the
// given host worker count and returns the rendered trace JSON and counter
// report.
func runFixture(t *testing.T, workers int) (traceJSON, counters, profile []byte) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "observability", "fixture.c"))
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := xmtgo.Build("fixture.c", string(src), xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xmtgo.ConfigFPGA64()
	cfg.HostWorkers = workers
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEventLog(trace.NewEventLog())
	lineProf := stats.NewLineProfile(prog, cfg.Clusters+1)
	lineProf.SetSource(string(src))
	sys.AttachProfile(lineProf)
	res, err := sys.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("fixture did not halt (cycles=%d)", res.Cycles)
	}
	if got, want := out.String(), "sum=272 done=16\n"; got != want {
		t.Fatalf("fixture output %q, want %q", got, want)
	}
	var tr, ctr, prof bytes.Buffer
	if err := sys.EventLog().WriteChrome(&tr, sys.ChromeMeta()); err != nil {
		t.Fatal(err)
	}
	sys.Stats.ReportCounters(&ctr)
	lineProf.Report(&prof, 30)
	return tr.Bytes(), ctr.Bytes(), prof.Bytes()
}

func TestObservabilityGolden(t *testing.T) {
	for _, workers := range []int{1, 4} {
		traceJSON, counters, profile := runFixture(t, workers)
		// The observability contract: every artifact is independent of the
		// host worker count, so a single golden per artifact covers both runs.
		for name, got := range map[string][]byte{
			"trace.json.golden": traceJSON,
			"counters.golden":   counters,
			"profile.golden":    profile,
		} {
			path := filepath.Join("testdata", "observability", name)
			if *update {
				if workers == 1 {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d: %s diverged from golden (%d vs %d bytes); if the change is deliberate, re-bless with -update",
					workers, name, len(got), len(want))
			}
		}
	}
}
