// Golden tests for the observability surface: the Chrome trace-event JSON
// and the hardware counter report for a fixed fixture program are compared
// byte-for-byte against checked-in files, at host_workers 1 and 4. Any
// change to event ordering, counter arithmetic, or report formatting shows
// up as a diff here; deliberate changes are re-blessed with
//
//	go test -run TestObservabilityGolden -update .
package xmtgo_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xmtgo"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

var update = flag.Bool("update", false, "rewrite the observability golden files")

// fixtureArtifacts is every golden-tested observability rendering of one
// fixture run.
type fixtureArtifacts struct {
	traceJSON, counters, profile []byte
	countersJSON, samples, prom  []byte
}

// runFixture runs testdata/observability/fixture.c on fpga64 with the
// given host worker count and returns the rendered observability
// artifacts: Chrome trace, counter report, cycle profile, counters JSON,
// interval-sample JSONL and the Prometheus text rendering.
func runFixture(t *testing.T, workers int) fixtureArtifacts {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "observability", "fixture.c"))
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := xmtgo.Build("fixture.c", string(src), xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xmtgo.ConfigFPGA64()
	cfg.HostWorkers = workers
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEventLog(trace.NewEventLog())
	lineProf := stats.NewLineProfile(prog, cfg.Clusters+1)
	lineProf.SetSource(string(src))
	sys.AttachProfile(lineProf)
	smp := metrics.Attach(sys, 200)
	res, err := sys.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	if !res.Halted {
		t.Fatalf("fixture did not halt (cycles=%d)", res.Cycles)
	}
	if got, want := out.String(), "sum=272 done=16\n"; got != want {
		t.Fatalf("fixture output %q, want %q", got, want)
	}
	var tr, ctr, prof bytes.Buffer
	if err := sys.EventLog().WriteChrome(&tr, sys.ChromeMeta()); err != nil {
		t.Fatal(err)
	}
	sys.Stats.ReportCounters(&ctr)
	lineProf.Report(&prof, 30)

	var cj, sj, pm bytes.Buffer
	if err := sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)).WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJSONL(&sj, smp.Header(), smp.Samples()); err != nil {
		t.Fatal(err)
	}
	samples := smp.Samples()
	metrics.RenderProm(&pm, &metrics.Published{
		Status: metrics.Status{
			Cycle: res.Cycles, Ticks: int64(res.Ticks), Instrs: res.Instrs,
			AliveTCUs: sys.AliveTCUs(), Done: true,
		},
		Counters: sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)),
		Sample:   &samples[len(samples)-1],
	})
	return fixtureArtifacts{traceJSON: tr.Bytes(), counters: ctr.Bytes(), profile: prof.Bytes(),
		countersJSON: cj.Bytes(), samples: sj.Bytes(), prom: pm.Bytes()}
}

func TestObservabilityGolden(t *testing.T) {
	for _, workers := range []int{1, 4} {
		art := runFixture(t, workers)
		// The observability contract: every artifact is independent of the
		// host worker count, so a single golden per artifact covers both runs.
		for name, got := range map[string][]byte{
			"trace.json.golden":    art.traceJSON,
			"counters.golden":      art.counters,
			"profile.golden":       art.profile,
			"counters.json.golden": art.countersJSON,
			"samples.jsonl.golden": art.samples,
			"metrics.prom.golden":  art.prom,
		} {
			path := filepath.Join("testdata", "observability", name)
			if *update {
				if workers == 1 {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d: %s diverged from golden (%d vs %d bytes); if the change is deliberate, re-bless with -update",
					workers, name, len(got), len(want))
			}
		}
	}
}
