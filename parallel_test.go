// Host-parallel determinism: the cycle-accurate simulator must produce
// bit-identical results regardless of how many host workers tick the
// cluster shards (Config.HostWorkers). This is the contract that makes
// -workers safe to default to GOMAXPROCS: cycle counts, halt state, every
// statistics counter and all program output match the serial run exactly.
// scripts/check.sh runs this test under -race, which also proves the
// compute phase is free of shared-state races.
package xmtgo_test

import (
	"bytes"
	"reflect"
	"testing"

	"xmtgo"
	"xmtgo/internal/workloads"
)

type detCase struct {
	name    string
	src     string
	cfg     xmtgo.Config
	memmaps []string
}

func determinismCorpus(t *testing.T) []detCase {
	t.Helper()
	fpga := xmtgo.ConfigFPGA64()
	async := fpga
	async.ICNAsync = true
	chip := xmtgo.ConfigChip1024()

	var cases []detCase
	threads := fpga.Clusters * fpga.TCUsPerCluster
	for _, g := range []workloads.TableIGroup{
		workloads.ParallelMemory, workloads.ParallelCompute,
		workloads.SerialMemory, workloads.SerialCompute,
	} {
		work := 8
		if g == workloads.SerialMemory || g == workloads.SerialCompute {
			work = 400
		}
		cases = append(cases, detCase{name: "tableI-" + g.Name(), src: workloads.TableI(g, threads, work), cfg: fpga})
	}

	comp, _ := workloads.Compaction(256, 0.3, 7)
	cases = append(cases, detCase{name: "compaction", src: comp, cfg: fpga})
	red, _, _ := workloads.Reduction(512)
	cases = append(cases, detCase{name: "reduction", src: red, cfg: fpga})
	vec, _, _ := workloads.VecAdd(512)
	cases = append(cases, detCase{name: "vecadd", src: vec, cfg: fpga})
	mm, _ := workloads.MatMul(10)
	cases = append(cases, detCase{name: "matmul", src: mm, cfg: fpga})
	ps, _, _, _ := workloads.PrefixSum(256)
	cases = append(cases, detCase{name: "prefixsum", src: ps, cfg: fpga})
	g := workloads.RandomGraph(128, 6, 1)
	bfs, _ := workloads.BFS(256, 2048)
	cases = append(cases, detCase{name: "bfs", src: bfs, cfg: fpga, memmaps: []string{g.MemMap()}})

	// The asynchronous interconnect exercises the continuous-time package
	// path (per-port handshake times + deferred delivery scheduling).
	cases = append(cases, detCase{name: "vecadd-asyncICN", src: vec, cfg: async})
	// The 1024-TCU chip shards 64 clusters across the pool.
	cases = append(cases, detCase{name: "tableI-parmem-chip1024",
		src: workloads.TableI(workloads.ParallelMemory, chip.Clusters*chip.TCUsPerCluster, 4), cfg: chip})
	return cases
}

func runWorkers(t *testing.T, tc detCase, workers int) (*xmtgo.SimResult, *xmtgo.Stats, string) {
	t.Helper()
	prog, _, err := xmtgo.Build(tc.name+".c", tc.src, xmtgo.DefaultCompileOptions(), tc.memmaps...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tc.cfg
	cfg.HostWorkers = workers
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2_000_000)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, sys.Stats, out.String()
}

func TestHostParallelDeterminism(t *testing.T) {
	for _, tc := range determinismCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref, refStats, refOut := runWorkers(t, tc, 1)
			if !ref.Halted {
				t.Fatalf("serial run did not halt (cycles=%d)", ref.Cycles)
			}
			// 3 shards unevenly across 64/8 clusters; 4 evenly.
			for _, w := range []int{3, 4} {
				res, st, out := runWorkers(t, tc, w)
				if *res != *ref {
					t.Errorf("workers=%d: result %+v != serial %+v", w, *res, *ref)
				}
				if out != refOut {
					t.Errorf("workers=%d: program output diverged:\n%q\nvs serial\n%q", w, out, refOut)
				}
				if !reflect.DeepEqual(st, refStats) {
					t.Errorf("workers=%d: statistics diverged from serial", w)
				}
			}
		})
	}
}
