// Host-parallel determinism: the cycle-accurate simulator must produce
// bit-identical results regardless of how many host workers tick the
// cluster shards (Config.HostWorkers). This is the contract that makes
// -workers safe to default to GOMAXPROCS: cycle counts, halt state, every
// statistics counter and all program output match the serial run exactly.
// scripts/check.sh runs this test under -race, which also proves the
// compute phase is free of shared-state races.
package xmtgo_test

import (
	"bytes"
	"reflect"
	"testing"

	"xmtgo"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/trace"
	"xmtgo/internal/workloads"
)

type detCase struct {
	name    string
	src     string
	cfg     xmtgo.Config
	memmaps []string
}

func determinismCorpus(t *testing.T) []detCase {
	t.Helper()
	fpga := xmtgo.ConfigFPGA64()
	async := fpga
	async.ICNAsync = true
	chip := xmtgo.ConfigChip1024()

	var cases []detCase
	threads := fpga.Clusters * fpga.TCUsPerCluster
	for _, g := range []workloads.TableIGroup{
		workloads.ParallelMemory, workloads.ParallelCompute,
		workloads.SerialMemory, workloads.SerialCompute,
	} {
		work := 8
		if g == workloads.SerialMemory || g == workloads.SerialCompute {
			work = 400
		}
		cases = append(cases, detCase{name: "tableI-" + g.Name(), src: workloads.TableI(g, threads, work), cfg: fpga})
	}

	comp, _ := workloads.Compaction(256, 0.3, 7)
	cases = append(cases, detCase{name: "compaction", src: comp, cfg: fpga})
	red, _, _ := workloads.Reduction(512)
	cases = append(cases, detCase{name: "reduction", src: red, cfg: fpga})
	vec, _, _ := workloads.VecAdd(512)
	cases = append(cases, detCase{name: "vecadd", src: vec, cfg: fpga})
	mm, _ := workloads.MatMul(10)
	cases = append(cases, detCase{name: "matmul", src: mm, cfg: fpga})
	ps, _, _, _ := workloads.PrefixSum(256)
	cases = append(cases, detCase{name: "prefixsum", src: ps, cfg: fpga})
	g := workloads.RandomGraph(128, 6, 1)
	bfs, _ := workloads.BFS(256, 2048)
	cases = append(cases, detCase{name: "bfs", src: bfs, cfg: fpga, memmaps: []string{g.MemMap()}})

	// The asynchronous interconnect exercises the continuous-time package
	// path (per-port handshake times + deferred delivery scheduling).
	cases = append(cases, detCase{name: "vecadd-asyncICN", src: vec, cfg: async})
	// The 1024-TCU chip shards 64 clusters across the pool.
	cases = append(cases, detCase{name: "tableI-parmem-chip1024",
		src: workloads.TableI(workloads.ParallelMemory, chip.Clusters*chip.TCUsPerCluster, 4), cfg: chip})
	return cases
}

// workersRun is one run's observable artifacts: everything that the
// determinism contract promises is bit-identical across host worker counts.
type workersRun struct {
	res          *xmtgo.SimResult
	stats        *xmtgo.Stats
	out          string // program printf output
	trace        string // Chrome trace-event JSON
	counters     string // hardware performance counter report
	samples      string // interval-sampler JSONL time series
	countersJSON string // machine-readable counter snapshot
	prom         string // Prometheus text rendering of the final state
	raceReport   string // xmtsan report (race checking is on for every run)
}

func runWorkers(t *testing.T, tc detCase, workers int) workersRun {
	t.Helper()
	prog, _, err := xmtgo.Build(tc.name+".c", tc.src, xmtgo.DefaultCompileOptions(), tc.memmaps...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tc.cfg
	cfg.HostWorkers = workers
	// The xmtsan shadow checks and report are part of the determinism
	// contract too: byte-identical at any worker count.
	cfg.RaceCheck = true
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEventLog(trace.NewEventLog())
	smp := metrics.Attach(sys, 500)
	res, err := sys.Run(2_000_000)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	var tr, ctr bytes.Buffer
	if err := sys.EventLog().WriteChrome(&tr, sys.ChromeMeta()); err != nil {
		t.Fatalf("workers=%d: write chrome trace: %v", workers, err)
	}
	sys.Stats.ReportCounters(&ctr)
	var raceRep bytes.Buffer
	if err := sys.RaceDetector().WriteReport(&raceRep); err != nil {
		t.Fatalf("workers=%d: write race report: %v", workers, err)
	}
	return workersRun{res: res, stats: sys.Stats, out: out.String(),
		trace: tr.String(), counters: ctr.String(),
		samples:      telemetrySamples(t, smp),
		countersJSON: telemetryCounters(t, sys, res),
		prom:         telemetryProm(smp, sys, res),
		raceReport:   raceRep.String()}
}

// telemetrySamples renders the sampler's JSONL artifact.
func telemetrySamples(t *testing.T, smp *metrics.Sampler) string {
	t.Helper()
	var b bytes.Buffer
	if err := metrics.WriteJSONL(&b, smp.Header(), smp.Samples()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// telemetryCounters renders the -counters-json artifact.
func telemetryCounters(t *testing.T, sys *xmtgo.Simulator, res *xmtgo.SimResult) string {
	t.Helper()
	var b bytes.Buffer
	if err := sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// telemetryProm renders the /metrics text for the run's final state.
func telemetryProm(smp *metrics.Sampler, sys *xmtgo.Simulator, res *xmtgo.SimResult) string {
	samples := smp.Samples()
	var b bytes.Buffer
	metrics.RenderProm(&b, &metrics.Published{
		Status: metrics.Status{
			Cycle: res.Cycles, Ticks: int64(res.Ticks), Instrs: res.Instrs,
			AliveTCUs: sys.AliveTCUs(), Done: true,
		},
		Counters: sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)),
		Sample:   &samples[len(samples)-1],
	})
	return b.String()
}

func TestHostParallelDeterminism(t *testing.T) {
	for _, tc := range determinismCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref := runWorkers(t, tc, 1)
			if !ref.res.Halted {
				t.Fatalf("serial run did not halt (cycles=%d)", ref.res.Cycles)
			}
			// 2 and 3 shard unevenly across 64/8 clusters; 4 evenly.
			for _, w := range []int{2, 3, 4} {
				r := runWorkers(t, tc, w)
				if *r.res != *ref.res {
					t.Errorf("workers=%d: result %+v != serial %+v", w, *r.res, *ref.res)
				}
				if r.out != ref.out {
					t.Errorf("workers=%d: program output diverged:\n%q\nvs serial\n%q", w, r.out, ref.out)
				}
				if !reflect.DeepEqual(r.stats, ref.stats) {
					t.Errorf("workers=%d: statistics diverged from serial", w)
				}
				if r.trace != ref.trace {
					t.Errorf("workers=%d: Chrome trace JSON diverged from serial (%d vs %d bytes)",
						w, len(r.trace), len(ref.trace))
				}
				if r.counters != ref.counters {
					t.Errorf("workers=%d: counter report diverged from serial:\n%s\nvs serial\n%s",
						w, r.counters, ref.counters)
				}
				if r.samples != ref.samples {
					t.Errorf("workers=%d: interval-sample JSONL diverged from serial (%d vs %d bytes)",
						w, len(r.samples), len(ref.samples))
				}
				if r.countersJSON != ref.countersJSON {
					t.Errorf("workers=%d: counters JSON diverged from serial", w)
				}
				if r.prom != ref.prom {
					t.Errorf("workers=%d: Prometheus rendering diverged from serial:\n%s\nvs serial\n%s",
						w, r.prom, ref.prom)
				}
				if r.raceReport != ref.raceReport {
					t.Errorf("workers=%d: xmtsan report diverged from serial:\n%s\nvs serial\n%s",
						w, r.raceReport, ref.raceReport)
				}
			}
		})
	}
}
