// Two-sided race checking (docs/ANALYZER.md): xmtsan — the deterministic
// dynamic happens-before sanitizer inside the cycle-accurate simulator —
// is differentially validated against the static spawn-race check:
//
//   - the paper's Fig. 6 litmus program is flagged by BOTH sides, on the
//     same write/read line pairs;
//   - the Fig. 7 (prefix-sum synchronized) program is clean on BOTH sides;
//   - every synchronized program in the conformance corpus is race-clean
//     on both sides, and the one racy-by-design workload
//     (connectivity-par) is flagged by both, with static findings
//     classified confirmed/unconfirmed against the dynamic reports;
//   - the xmtsan report for a fixed racy fixture is byte-identical across
//     host worker counts and matches a checked-in golden;
//   - a run chopped at checkpoints reproduces the full-run report as the
//     exact concatenation of its per-segment reports.
package xmtgo_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmtgo"
	"xmtgo/internal/analysis"
	"xmtgo/internal/diag"
	"xmtgo/internal/sim/race"
	"xmtgo/internal/workloads"
)

// runXmtsan compiles src and runs it cycle-accurately with the race
// sanitizer enabled, returning the finished simulator (whose RaceDetector
// holds the reports).
func runXmtsan(t *testing.T, name, src string, workers int, memmaps ...string) *xmtgo.Simulator {
	t.Helper()
	prog, _, err := xmtgo.Build(name, src, xmtgo.DefaultCompileOptions(), memmaps...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := xmtgo.ConfigFPGA64()
	cfg.HostWorkers = workers
	cfg.RaceCheck = true
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("%s did not halt (cycles=%d)", name, res.Cycles)
	}
	return sys
}

// spawnRaceFindings runs only the static spawn-race pass over src.
func spawnRaceFindings(name, src string) []diag.Diagnostic {
	var out []diag.Diagnostic
	for _, d := range analysis.Analyze(name, src, map[string]bool{"spawn-race": true}) {
		if d.Check == "spawn-race" {
			out = append(out, d)
		}
	}
	return out
}

// linePair identifies one conflicting access pair by its two source lines,
// orientation-free: a static spawn-race finding anchors at whichever
// access came second in traversal order (with the other as its related
// position), while a dynamic report is anchored at the write, so the join
// key must not care which side is which.
type linePair struct{ lo, hi int }

func pairOf(a, b int) linePair {
	if a > b {
		a, b = b, a
	}
	return linePair{lo: a, hi: b}
}

func staticPairs(t *testing.T, ds []diag.Diagnostic) map[linePair]bool {
	t.Helper()
	out := make(map[linePair]bool)
	for _, d := range ds {
		if len(d.Related) == 0 {
			t.Fatalf("spawn-race finding without a related position: %s", d)
		}
		out[pairOf(d.Pos.Line, d.Related[0].Pos.Line)] = true
	}
	return out
}

func dynamicPairs(reps []race.Report) map[linePair]bool {
	out := make(map[linePair]bool)
	for _, r := range reps {
		out[pairOf(r.WriteLine, r.OtherLine)] = true
	}
	return out
}

// TestXmtsanLitmusDifferential closes the loop on the paper's Figs. 6/7:
// the static analyzer and the dynamic sanitizer must agree exactly on the
// two litmus programs, pair by pair.
func TestXmtsanLitmusDifferential(t *testing.T) {
	t.Run("fig6-flagged-by-both", func(t *testing.T) {
		src := workloads.LitmusRelaxedXMTC()
		static := spawnRaceFindings("fig6.c", src)
		if len(static) == 0 {
			t.Fatal("static spawn-race missed the Fig. 6 litmus program")
		}
		sys := runXmtsan(t, "fig6.c", src, 1)
		det := sys.RaceDetector()
		reps := det.Reports()
		if len(reps) == 0 {
			t.Fatal("xmtsan missed the Fig. 6 litmus program")
		}
		stat := staticPairs(t, static)
		dyn := dynamicPairs(reps)
		for _, d := range static {
			p := pairOf(d.Pos.Line, d.Related[0].Pos.Line)
			if !dyn[p] {
				t.Errorf("static finding not confirmed by xmtsan (lines %d/%d): %s", p.lo, p.hi, d)
			}
		}
		for _, r := range reps {
			p := pairOf(r.WriteLine, r.OtherLine)
			if !stat[p] {
				t.Errorf("xmtsan report with no static counterpart: %s", r.String())
			}
		}
		// The counters mirror the detector, and the xmtlint-compatible
		// rendering attributes every report to the source file.
		if sys.Stats.RaceChecks != det.Checks() || sys.Stats.RaceReports != uint64(len(reps)) {
			t.Errorf("counters (checks=%d reports=%d) disagree with the detector (checks=%d reports=%d)",
				sys.Stats.RaceChecks, sys.Stats.RaceReports, det.Checks(), len(reps))
		}
		for _, d := range det.Diagnostics("fig6.c") {
			if d.Check != "xmtsan" || d.Pos.File != "fig6.c" {
				t.Errorf("malformed xmtsan diagnostic: %s", d)
			}
		}
	})
	t.Run("fig7-clean-on-both", func(t *testing.T) {
		src := workloads.LitmusPSMXMTC()
		if ds := spawnRaceFindings("fig7.c", src); len(ds) != 0 {
			t.Errorf("static spawn-race flagged the synchronized Fig. 7 program: %v", ds)
		}
		det := runXmtsan(t, "fig7.c", src, 1).RaceDetector()
		if reps := det.Reports(); len(reps) != 0 {
			t.Errorf("xmtsan flagged the synchronized Fig. 7 program: %v", reps)
		}
		if det.Checks() == 0 {
			t.Error("xmtsan performed no checks on Fig. 7; the hooks are not firing")
		}
	})
}

// TestXmtsanDifferentialGate runs the whole conformance corpus through both
// sides. Synchronized workloads must be race-clean dynamically AND carry no
// static spawn-race finding. The one deliberately racy workload —
// connectivity-par, whose label-propagation rounds tolerate intra-round
// races by design — is the positive control: BOTH sides must flag it,
// with at least one static finding dynamically confirmed on the same
// write/access line pair. The two sides deliberately miss in opposite
// directions — the static check suppresses prefix-sum-ordered pairs
// across sibling branches (a documented over-approximation) while the
// dynamic side only sees pairs the executed schedule exposed — so the
// unmatched remainder on this workload is logged, not failed.
func TestXmtsanDifferentialGate(t *testing.T) {
	racyByDesign := map[string]bool{"connectivity-par": true}
	for _, tc := range conformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			det := runXmtsan(t, tc.name+".c", tc.src, 1, tc.memmaps...).RaceDetector()
			static := spawnRaceFindings(tc.name+".c", tc.src)
			// Parallel variants must actually exercise the shadow checks;
			// a zero count would mean the hooks silently stopped firing.
			if strings.Contains(tc.name, "-par") && det.Checks() == 0 {
				t.Error("no xmtsan checks performed on a parallel workload")
			}
			if !racyByDesign[tc.name] {
				if reps := det.Reports(); len(reps) != 0 {
					var b strings.Builder
					_ = det.WriteReport(&b)
					t.Errorf("xmtsan flagged a synchronized workload:\n%s", b.String())
				}
				for _, d := range static {
					t.Errorf("static spawn-race finding on a synchronized workload: %s", d)
				}
				return
			}
			reps := det.Reports()
			if len(reps) == 0 {
				t.Fatal("xmtsan observed no races on the racy-by-design workload")
			}
			if len(static) == 0 {
				t.Fatal("static spawn-race missed the racy-by-design workload")
			}
			stat := staticPairs(t, static)
			for _, r := range reps {
				p := pairOf(r.WriteLine, r.OtherLine)
				if !stat[p] {
					t.Logf("xmtsan-only pair (static suppressed it as prefix-sum ordered): %s", r.String())
				}
			}
			dyn := dynamicPairs(reps)
			confirmed := 0
			for _, d := range static {
				if dyn[pairOf(d.Pos.Line, d.Related[0].Pos.Line)] {
					confirmed++
				} else {
					t.Logf("static finding not exposed by this schedule (unconfirmed): %s", d)
				}
			}
			if confirmed == 0 {
				t.Error("no static spawn-race finding was dynamically confirmed")
			}
			t.Logf("%s: %d/%d static findings dynamically confirmed (%d xmtsan reports)",
				tc.name, confirmed, len(static), len(reps))
		})
	}
}

// TestXmtsanGolden runs testdata/observability/race_fixture.c — one racy
// epoch (Fig. 6 pattern) followed by one prefix-sum-synchronized epoch
// (Fig. 7 pattern) — at host_workers 1 and 4 and compares the xmtsan
// report byte-for-byte against the checked-in golden. Re-bless deliberate
// format changes with
//
//	go test -run TestXmtsanGolden -update .
func TestXmtsanGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "observability", "race_fixture.c"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "observability", "race_report.golden")
	for _, workers := range []int{1, 4} {
		sys := runXmtsan(t, "race_fixture.c", string(src), workers)
		var rep bytes.Buffer
		if err := sys.RaceDetector().WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if *update && workers == 1 {
			if err := os.WriteFile(golden, rep.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update): %v", err)
		}
		if !bytes.Equal(rep.Bytes(), want) {
			t.Errorf("workers=%d: xmtsan report diverged from golden:\n%s\nwant:\n%s",
				workers, rep.String(), want)
		}
		if len(sys.RaceDetector().Reports()) == 0 {
			t.Error("race fixture produced no reports; the fixture no longer races")
		}
	}
}

// xmtsanCheckpointSrc runs several spawn epochs, each exposing the same
// unsynchronized write/read pair, so the full-run report has one line per
// epoch and a chopped run must reproduce it segment by segment.
const xmtsanCheckpointSrc = `
int x = 0;
int sink = 0;
int main() {
    int i;
    for (i = 0; i < 8; i++) {
        spawn(0, 1) {
            if ($ == 0) {
                x = x + 1;
            } else {
                sink = sink + x;
            }
        }
    }
    print_int(sink);
    return 0;
}
`

// TestXmtsanCheckpointResume chops a racy multi-epoch run at periodic
// checkpoints (always between epochs: the master only checkpoints at
// quiescent serial points) and asserts that the concatenation of the
// per-segment xmtsan reports equals the uninterrupted run's report, and
// that the shadow-check counts add up — the sanitizer's state is strictly
// epoch-local, so chopping loses nothing.
func TestXmtsanCheckpointResume(t *testing.T) {
	prog, _, err := xmtgo.Build("ckptrace.c", xmtsanCheckpointSrc, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xmtgo.ConfigFPGA64()
	cfg.RaceCheck = true

	reportLines := func(det *race.Detector) []string {
		var out []string
		for _, r := range det.Reports() {
			out = append(out, r.String())
		}
		return out
	}

	// Reference: uninterrupted run.
	var refOut bytes.Buffer
	ref, err := xmtgo.NewSimulator(prog, cfg, &refOut)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(10_000_000)
	if err != nil || !refRes.Halted {
		t.Fatalf("reference run: halted=%v err=%v", refRes != nil && refRes.Halted, err)
	}
	refLines := reportLines(ref.RaceDetector())
	refChecks := ref.RaceDetector().Checks()
	if len(refLines) == 0 {
		t.Fatal("checkpoint fixture produced no races; the contract is untested")
	}

	// Chopped run: checkpoint every ~quarter of the reference run,
	// resuming each segment in a brand-new system with a fresh detector.
	var out bytes.Buffer
	var segLines []string
	var segChecks uint64
	segments := 0
	var st *xmtgo.Checkpoint
	for {
		sys, err := xmtgo.NewSimulator(prog, cfg, &out)
		if err != nil {
			t.Fatal(err)
		}
		if st != nil {
			if err := sys.RestoreState(st); err != nil {
				t.Fatalf("segment %d: restore: %v", segments, err)
			}
		}
		sys.CheckpointEvery(refRes.Cycles / 4)
		res, err := sys.Run(10_000_000)
		if err != nil {
			t.Fatalf("segment %d: %v", segments, err)
		}
		segments++
		segLines = append(segLines, reportLines(sys.RaceDetector())...)
		segChecks += sys.RaceDetector().Checks()
		if res.Checkpoint {
			var buf bytes.Buffer
			if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
				t.Fatal(err)
			}
			if st, err = xmtgo.LoadCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !res.Halted {
			t.Fatalf("segment %d stopped without halting: %+v", segments, res)
		}
		break
	}
	if segments < 2 {
		t.Fatalf("run never hit a periodic checkpoint (%d segments); contract untested", segments)
	}
	if strings.Join(segLines, "\n") != strings.Join(refLines, "\n") {
		t.Errorf("concatenated per-segment reports diverged from the full run:\nsegments (%d):\n%s\nfull run:\n%s",
			segments, strings.Join(segLines, "\n"), strings.Join(refLines, "\n"))
	}
	if segChecks != refChecks {
		t.Errorf("per-segment check counts sum to %d, full run performed %d", segChecks, refChecks)
	}
}
