// Robustness contracts of the cycle-accurate simulator (docs/ROBUSTNESS.md):
//
//   - Periodic checkpoint capture/restore is lossless: a run chopped into
//     checkpoint segments — each resumed into a freshly built system, with
//     the state round-tripped through the serialized format — ends in the
//     same architectural state as an uninterrupted run, at any host worker
//     count.
//   - Chaos determinism: under a mixed fault-injection plan (including
//     state-corrupting flips and permanent TCU failures), results remain
//     byte-identical per (workload, seed) across host worker counts.
//     scripts/check.sh runs the soak matrix under -race with a hard timeout.
package xmtgo_test

import (
	"bytes"
	"fmt"
	"testing"

	"xmtgo"
	"xmtgo/internal/workloads"
)

// TestCycleCheckpointResume captures checkpoints mid-run under the cycle
// model, restores each into a fresh simulator, and asserts the final memory,
// registers and printf output are byte-equal to an uninterrupted run — at
// host_workers 1 and 4.
func TestCycleCheckpointResume(t *testing.T) {
	red, _, _ := workloads.Reduction(512)
	ps, _, _, _ := workloads.PrefixSum(256)
	cases := []struct{ name, src string }{
		{"reduction", red},
		{"prefixsum", ps},
	}
	for _, tc := range cases {
		prog, _, err := xmtgo.Build(tc.name+".c", tc.src, xmtgo.DefaultCompileOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				cfg := xmtgo.ConfigFPGA64()
				cfg.HostWorkers = workers

				// Reference: uninterrupted run.
				var refOut bytes.Buffer
				ref, err := xmtgo.NewSimulator(prog, cfg, &refOut)
				if err != nil {
					t.Fatal(err)
				}
				refRes, err := ref.Run(10_000_000)
				if err != nil || !refRes.Halted {
					t.Fatalf("reference run: halted=%v err=%v", refRes != nil && refRes.Halted, err)
				}

				// Chopped run: checkpoint every ~fifth of the reference run,
				// round-tripping the state through the serialized format and
				// resuming each segment in a brand-new system.
				var out bytes.Buffer
				segments := 0
				var st *xmtgo.Checkpoint
				for {
					sys, err := xmtgo.NewSimulator(prog, cfg, &out)
					if err != nil {
						t.Fatal(err)
					}
					if st != nil {
						if err := sys.RestoreState(st); err != nil {
							t.Fatalf("segment %d: restore: %v", segments, err)
						}
					}
					sys.CheckpointEvery(refRes.Cycles / 5)
					res, err := sys.Run(10_000_000)
					if err != nil {
						t.Fatalf("segment %d: %v", segments, err)
					}
					segments++
					if res.Checkpoint {
						var buf bytes.Buffer
						if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
							t.Fatal(err)
						}
						if st, err = xmtgo.LoadCheckpoint(&buf); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if !res.Halted {
						t.Fatalf("segment %d stopped without halting: %+v", segments, res)
					}
					// Final architectural state must match the uninterrupted
					// run exactly. (Cycle counts legitimately drift: a
					// checkpoint holds only architectural state, so resumed
					// segments replay with cold caches.)
					if out.String() != refOut.String() {
						t.Errorf("output %q, reference %q", out.String(), refOut.String())
					}
					if sys.Machine.G != ref.Machine.G {
						t.Error("global registers diverged from the uninterrupted run")
					}
					if *sys.MasterContext() != *ref.MasterContext() {
						t.Error("master context diverged from the uninterrupted run")
					}
					if !bytes.Equal(sys.Machine.Mem, ref.Machine.Mem) {
						t.Error("memory diverged from the uninterrupted run")
					}
					break
				}
				if segments < 2 {
					t.Fatalf("run never hit a periodic checkpoint (%d segments); contract untested", segments)
				}
			})
		}
	}
}

// chaosPlan mixes every fault kind, including state-corrupting flips and a
// permanent TCU failure, inside a window every soak workload crosses.
const chaosPlan = "memflip:2@50-400;regflip:1@50-400;icndelay:2@50-400;icndup:1@50-400;icndrop:1@50-400;cachestall:1x100@50-400;tcufail:1@50-400"

// TestChaosSoak is the seeded fault-injection matrix: 3 workloads × 3 seeds
// × host_workers {1,4}; every observable — output, halt state, cycle count,
// error text, counter report — must be byte-identical per (workload, seed)
// across worker counts, even when the injected corruption crashes or
// derails the program.
func TestChaosSoak(t *testing.T) {
	comp, _ := workloads.Compaction(128, 0.3, 7)
	red, _, _ := workloads.Reduction(256)
	vec, _, _ := workloads.VecAdd(256)
	cases := []struct{ name, src string }{
		{"compaction", comp},
		{"reduction", red},
		{"vecadd", vec},
	}
	type capture struct {
		out, counters, errStr string
		halted                bool
		cycles                int64
	}
	for _, tc := range cases {
		prog, _, err := xmtgo.Build(tc.name+".c", tc.src, xmtgo.DefaultCompileOptions())
		if err != nil {
			t.Fatal(err)
		}
		run := func(seed uint64, workers int) capture {
			cfg := xmtgo.ConfigFPGA64()
			cfg.HostWorkers = workers
			cfg.FaultPlan = chaosPlan
			cfg.FaultSeed = seed
			cfg.WatchdogCycles = 200_000
			var out bytes.Buffer
			sys, err := xmtgo.NewSimulator(prog, cfg, &out)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			res, err := sys.Run(2_000_000)
			c := capture{out: out.String(), halted: res.Halted, cycles: res.Cycles}
			if err != nil {
				c.errStr = err.Error()
			}
			var ctr bytes.Buffer
			sys.Stats.ReportCounters(&ctr)
			c.counters = ctr.String()
			return c
		}
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				ref := run(seed, 1)
				got := run(seed, 4)
				if got != ref {
					t.Fatalf("workers=4 diverged from workers=1:\nref: halted=%v cycles=%d err=%q out=%q\ngot: halted=%v cycles=%d err=%q out=%q\ncounters equal: %v",
						ref.halted, ref.cycles, ref.errStr, ref.out,
						got.halted, got.cycles, got.errStr, got.out, got.counters == ref.counters)
				}
			})
		}
	}
}
