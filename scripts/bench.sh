#!/bin/sh
# bench.sh — record the perf trajectory. Run from the repo root:
#
#     sh scripts/bench.sh
#
# Runs the Table I throughput benchmarks, the host-parallel scaling
# benchmark, the lookahead comparison (single-cycle vs derived window vs
# optimistic, docs/PERF.md §Lookahead) and the functional-backend
# comparison (interpreter vs funcvm bytecode VM, docs/SIMULATOR.md
# §Functional backends) with -benchmem, writes the parsed results to
# BENCH_<date>.json,
# appends the record to the cross-run BENCH_HISTORY.jsonl, appends a
# one-line summary to EXPERIMENTS.md so successive PRs can compare
# simulated-cycles/sec on the same workloads, and diffs the last two
# history entries with xmtperf (generous 30% threshold: the recorded
# history spans different hosts and load conditions, so only gross
# regressions should fail the run).
set -eu

cd "$(dirname "$0")/.."

date=$(date +%Y-%m-%d)
out="BENCH_${date}.json"
history="BENCH_HISTORY.jsonl"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (Table I + host-parallel scaling + lookahead + functional backends)"
go test -run '^$' -bench 'BenchmarkTableI_|BenchmarkHostParallelScaling|BenchmarkLookahead|BenchmarkFuncBackend' \
    -benchmem . | tee "$raw"

go run ./cmd/benchjson -date "$date" -o "$out" -history "$history" <"$raw"
echo "wrote $out and appended to $history"

go run ./cmd/benchjson -date "$date" -summary <"$raw" >>EXPERIMENTS.md
echo "appended summary to EXPERIMENTS.md"

# Cross-run regression gate: compare the two most recent history entries.
# ns/op is the inverse of sim_cycle/sec but measures wall time, the
# noisiest signal on a shared host, so it (like the allocation metrics)
# gets a wider band than the throughput gate.
if [ "$(wc -l <"$history")" -ge 2 ]; then
    echo "== xmtperf (last two $history entries, 30% threshold)"
    go run ./cmd/xmtperf -threshold 30 -t ns/op=60 -t allocs/op=60 -t B/op=60 "$history"
fi
