#!/bin/sh
# bench.sh — record the perf trajectory. Run from the repo root:
#
#     sh scripts/bench.sh
#
# Runs the Table I throughput benchmarks and the host-parallel scaling
# benchmark with -benchmem, writes the parsed results to BENCH_<date>.json,
# and appends a one-line summary to EXPERIMENTS.md so successive PRs can
# compare simulated-cycles/sec on the same workloads.
set -eu

cd "$(dirname "$0")/.."

date=$(date +%Y-%m-%d)
out="BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (Table I + host-parallel scaling)"
go test -run '^$' -bench 'BenchmarkTableI_|BenchmarkHostParallelScaling' \
    -benchmem . | tee "$raw"

go run ./cmd/benchjson -date "$date" -o "$out" <"$raw"
echo "wrote $out"

go run ./cmd/benchjson -date "$date" -summary <"$raw" >>EXPERIMENTS.md
echo "appended summary to EXPERIMENTS.md"
