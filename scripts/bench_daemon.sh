#!/bin/sh
# bench_daemon.sh — record the xmtd daemon's service quality. Run from the
# repo root:
#
#     sh scripts/bench_daemon.sh
#
# Runs BenchmarkDaemon (internal/daemon), which reports jobs/sec (short jobs
# through the full fsync'd-journal + queue + worker pipeline) and ttfs_ns
# (time-to-first-sample: Submit until /status first shows checkpointed
# progress), writes the parsed results to BENCH_daemon_<date>.json, appends
# to the cross-run BENCH_DAEMON_HISTORY.jsonl (separate from the simulator
# throughput history so neither gate goes vacuous), and diffs the last two
# entries with xmtperf. jobs/sec gates as higher-better; ttfs_ns and the
# daemon's own latency-histogram percentiles (queue_wait/ttfs p50 and p99,
# internal/obs) gate as lower-better. All get the wide cross-host band (the
# history spans hosts and load).
set -eu

cd "$(dirname "$0")/.."

date=$(date +%Y-%m-%d)
out="BENCH_daemon_${date}.json"
history="BENCH_DAEMON_HISTORY.jsonl"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench BenchmarkDaemon (jobs/sec + time-to-first-sample)"
go test -run '^$' -bench BenchmarkDaemon -benchmem ./internal/daemon | tee "$raw"

go run ./cmd/benchjson -date "$date" -o "$out" -history "$history" <"$raw"
echo "wrote $out and appended to $history"

if [ "$(wc -l <"$history")" -ge 2 ]; then
    echo "== xmtperf (last two $history entries, 30% threshold)"
    go run ./cmd/xmtperf -threshold 30 -t ns/op=60 -t allocs/op=60 -t B/op=60 -t ttfs_ns=60 \
        -t queue_wait_p50_ns=60 -t queue_wait_p99_ns=60 -t ttfs_p50_ns=60 -t ttfs_p99_ns=60 "$history"
fi
