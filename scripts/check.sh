#!/bin/sh
# check.sh — the repository's build gate. Run from the repo root:
#
#     sh scripts/check.sh
#
# It verifies formatting, vets, builds, tests, and then dogfoods the
# static analyzer over the XMTC fixtures in examples/xmtc: the clean
# programs must produce no findings, the Fig. 6 litmus must fail the
# lint, and the Fig. 7 litmus must stay clean through the full compile
# pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (simulator core + host-parallel determinism)"
go test -race ./internal/sim/engine ./internal/sim/cycle ./internal/sim/funcmodel
go test -race -run TestHostParallelDeterminism .

echo "== xmtlint (dogfood over examples/xmtc)"
XMTLINT="go run ./cmd/xmtlint"

# Clean fixtures: zero findings, through the full pipeline where possible.
$XMTLINT -compile \
    examples/xmtc/compact.c \
    examples/xmtc/histogram.c \
    examples/xmtc/litmus_psm.c \
    examples/xmtc/suppress.c

# The Fig. 6 relaxed litmus and the misuse catalog MUST fail the lint.
for bad in examples/xmtc/litmus_relaxed.c examples/xmtc/misuse.c; do
    if $XMTLINT "$bad" >/dev/null 2>&1; then
        echo "ERROR: xmtlint reported $bad clean; it must be flagged" >&2
        exit 1
    fi
done

echo "All checks passed."
