#!/bin/sh
# check.sh — the repository's build gate. Run from the repo root:
#
#     sh scripts/check.sh
#
# It verifies formatting, vets, builds, tests, and then dogfoods the
# static analyzer over the XMTC fixtures in examples/xmtc: the clean
# programs must produce no findings, the Fig. 6 litmus must fail the
# lint, and the Fig. 7 litmus must stay clean through the full compile
# pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

# staticcheck is optional: run it when the host has it, skip quietly when
# not (the gate must not install anything).
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ($(staticcheck -version 2>/dev/null || echo unknown))"
    staticcheck ./...
else
    echo "== staticcheck (not installed; skipping)"
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== conformance (three-way: interp vs funcvm vs cycle) + observability goldens"
go test -count=1 -run 'TestFuncCycleConformance|TestFuncVMCheckpointResume|TestObservabilityGolden' .

echo "== go test -race (simulator core + host-parallel determinism)"
go test -race ./internal/sim/engine ./internal/sim/cycle ./internal/sim/funcmodel
go test -race -run TestHostParallelDeterminism .

echo "== lookahead gate (window determinism matrix + rollback sanity)"
# The bounded-lookahead engine must be architecturally invisible: byte-
# identical artifacts across host_workers {1,2,4} x lookahead {1, 3,
# derived} x {windowed, optimistic}, checkpoint/resume mid-window, and the
# optimistic run must actually exercise the rollback path (nonzero
# System.Rollbacks) while matching the lockstep result.
go test -count=1 -run 'TestLookaheadDeterminism|TestLookaheadCheckpointResume|TestOptimisticRollbackOccurs' .

# Cross-run throughput gate: when bench.sh has recorded at least two
# BENCH_HISTORY.jsonl entries, sim_cycle/sec and sim_instr/sec (direction:
# up — this covers the functional backends' instr/sec, so the funcvm
# dispatch loop cannot quietly lose its edge) must not regress beyond the
# wide cross-host band.
if [ -f BENCH_HISTORY.jsonl ] && [ "$(wc -l <BENCH_HISTORY.jsonl)" -ge 2 ]; then
    echo "== xmtperf (BENCH_HISTORY.jsonl: sim_cycle/sec + sim_instr/sec regression gate)"
    go run ./cmd/xmtperf -threshold 30 -t ns/op=60 -t allocs/op=60 -t B/op=60 BENCH_HISTORY.jsonl
fi

echo "== chaos soak (seeded fault-injection matrix, docs/ROBUSTNESS.md)"
# 3 workloads x 3 seeds x host_workers {1,4} under a mixed fault plan, run
# under -race with a hard timeout: results must be byte-identical per
# (workload, seed) across worker counts even while faults corrupt state.
go test -race -count=1 -timeout 300s -run 'TestChaosSoak|TestDegradedConformance' .

echo "== fuzz smoke (parser + assembler + config + analyzer + backend differential)"
go test -fuzz FuzzParseXMTC -fuzztime 5s -run '^$' ./internal/xmtc
go test -fuzz FuzzAssemble -fuzztime 5s -run '^$' ./internal/asm
go test -fuzz FuzzConfig -fuzztime 5s -run '^$' ./internal/config
go test -fuzz FuzzAnalyze -fuzztime 5s -run '^$' ./internal/analysis
go test -fuzz FuzzBackendDifferential -fuzztime 5s -run '^$' .

echo "== telemetry endpoint smoke (xmtsim -serve)"
# Start xmtsim with a live metrics server mid-run, scrape /metrics and
# /status, and assert the advertised metric families.
go test -count=1 -run TestCLIServeEndpoints .

echo "== xmtd gate (daemon: submit, preempt, kill -9, journal replay, drain)"
# A real xmtd process over a unix socket: a high-priority job preempts a
# running one at a checkpoint boundary, kill -9 lands mid-job, a restart on
# the same data directory replays the journal and finishes the job with the
# right output, and a drain exits 0 leaving the clean-shutdown marker.
go test -count=1 -timeout 300s -run TestCLIDaemonCrashRecovery .

echo "== xmtd observability gate (lifecycle trace, latency histograms, structured logs, pprof)"
# A real xmtd with -serve/-pprof/-trace: a submit → preempt → resume → done
# lifecycle must show up as spans in xmtctl trace (Perfetto-loadable), the
# seven xmt_daemon_*_ns histogram families and xmt_trace_dropped_total must
# be on /metrics, daemon logs must be structured JSON with job/tenant
# fields (xmtctl logs and /logs agree), and /debug/pprof/ must answer.
go test -count=1 -timeout 300s -run TestCLIDaemonObservability .

echo "== xmtperf self-test (seeded regression fixture must trip the gate)"
go build -o /tmp/xmtperf.check ./cmd/xmtperf
if /tmp/xmtperf.check testdata/perf/bench_base.json testdata/perf/bench_regressed.json >/dev/null; then
    echo "ERROR: xmtperf passed the seeded regression fixture; it must exit nonzero" >&2
    exit 1
fi
/tmp/xmtperf.check testdata/perf/bench_base.json testdata/perf/bench_base.json >/dev/null

echo "== xmtperf gate (fixture counters vs committed baseline)"
# The observability fixture is deterministic, so its counter snapshot
# must match the committed baseline exactly (0.5% slack covers nothing
# real; any drift is a simulator-semantics change that needs a rebless
# of testdata/perf/baseline_counters.json alongside the goldens).
counters=$(mktemp)
go run ./cmd/xmtrun -config fpga64 -counters-json "$counters" \
    testdata/observability/fixture.c >/dev/null
/tmp/xmtperf.check -threshold 0.5 testdata/perf/baseline_counters.json "$counters"
rm -f "$counters" /tmp/xmtperf.check

echo "== coverage gate"
# Total statement coverage must not drop below the recorded baseline
# (78.0% at the PR-2 seed, 78.1% at PR-5, 78.9% at PR-8, 79.0% at PR-9 —
# the daemon, its CLIs and sigctl ship with in-process coverage; measured
# 79.3% then, 79.5% at PR-10 with internal/obs and the daemon threading,
# baselined with slack for timing-dependent daemon branches). Raise the
# baseline when coverage improves; never lower it to make a change pass.
baseline=79.0
profile=$(mktemp)
go test -count=1 -coverprofile="$profile" -coverpkg=./... ./... >/dev/null
total=$(go tool cover -func="$profile" | tail -1 | sed 's/.*[[:space:]]\([0-9.]*\)%/\1/')
rm -f "$profile"
echo "total coverage: ${total}% (baseline ${baseline}%)"
if [ "$(printf '%s\n' "$baseline" "$total" | sort -g | head -1)" != "$baseline" ]; then
    echo "ERROR: total coverage ${total}% fell below the ${baseline}% baseline" >&2
    exit 1
fi

echo "== xmtlint (dogfood over examples/xmtc)"
XMTLINT="go run ./cmd/xmtlint"

# Clean fixtures: zero findings, through the full pipeline where possible.
$XMTLINT -compile \
    examples/xmtc/compact.c \
    examples/xmtc/histogram.c \
    examples/xmtc/litmus_psm.c \
    examples/xmtc/suppress.c

# The Fig. 6 relaxed litmus, the misuse catalog and the dataflow-check
# catalog MUST fail the lint.
for bad in examples/xmtc/litmus_relaxed.c examples/xmtc/misuse.c \
    examples/xmtc/sync_safety.c; do
    if $XMTLINT "$bad" >/dev/null 2>&1; then
        echo "ERROR: xmtlint reported $bad clean; it must be flagged" >&2
        exit 1
    fi
done

echo "== xmtsan (two-sided race gate: static differential + dynamic litmus)"
# The differential tests cross-check xmtlint's spawn-race findings against
# the dynamic sanitizer over the litmus pair and the conformance corpus,
# and pin the report's determinism (workers, checkpoint/resume).
go test -count=1 -run 'TestXmtsan' .
# CLI smoke: the Fig. 6 litmus must race under xmtsan, the Fig. 7 litmus
# must not (report goes to stderr; the exit status stays 0 either way).
racelog=$(mktemp)
go run ./cmd/xmtrun -config fpga64 -race-check \
    examples/xmtc/litmus_relaxed.c >/dev/null 2>"$racelog"
if ! grep -q '^race:' "$racelog"; then
    echo "ERROR: xmtsan reported the Fig. 6 litmus race-free" >&2
    cat "$racelog" >&2
    exit 1
fi
go run ./cmd/xmtrun -config fpga64 -race-check \
    examples/xmtc/litmus_psm.c >/dev/null 2>"$racelog"
if ! grep -q '^xmtsan: 0 race(s)' "$racelog"; then
    echo "ERROR: xmtsan flagged the synchronized Fig. 7 litmus" >&2
    cat "$racelog" >&2
    exit 1
fi
rm -f "$racelog"

echo "All checks passed."
