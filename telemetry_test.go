// Time-resolved telemetry determinism: the interval-sample JSONL/CSV
// streams, the machine-readable counter snapshot and the Prometheus text
// rendering must be byte-identical for any host worker count — including
// runs with injected TCU failures and runs chopped by checkpoint/resume
// (docs/OBSERVABILITY.md, "Time-resolved telemetry & live monitoring").
package xmtgo_test

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/workloads"
)

// telemetryArtifacts is one run's telemetry surface.
type telemetryArtifacts struct {
	jsonl, csv, counters, prom string
	samples                    int
}

func telemetryRun(t *testing.T, prog *xmtgo.Program, cfg xmtgo.Config, interval int64) telemetryArtifacts {
	t.Helper()
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	smp := metrics.Attach(sys, interval)
	res, err := sys.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("run did not halt (cycles=%d)", res.Cycles)
	}
	smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	return renderTelemetry(t, smp, sys, res)
}

func renderTelemetry(t *testing.T, smp *metrics.Sampler, sys *xmtgo.Simulator, res *xmtgo.SimResult) telemetryArtifacts {
	t.Helper()
	var jl, cs, cj, pb bytes.Buffer
	if err := metrics.WriteJSONL(&jl, smp.Header(), smp.Samples()); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteCSV(&cs, smp.Samples()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)).WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	samples := smp.Samples()
	metrics.RenderProm(&pb, &metrics.Published{
		Status: metrics.Status{
			Cycle: res.Cycles, Ticks: int64(res.Ticks), Instrs: res.Instrs,
			AliveTCUs: sys.AliveTCUs(), DecommissionedTCUs: sys.Stats.TCUsDecommissioned,
			FaultsInjected: sys.Stats.FaultsInjected(), Done: true,
		},
		Counters: sys.Stats.Snapshot(res.Cycles, int64(res.Ticks)),
		Sample:   &samples[len(samples)-1],
	})
	return telemetryArtifacts{jsonl: jl.String(), csv: cs.String(),
		counters: cj.String(), prom: pb.String(), samples: len(samples)}
}

func compareTelemetry(t *testing.T, workers int, got, ref telemetryArtifacts) {
	t.Helper()
	if got.jsonl != ref.jsonl {
		t.Errorf("workers=%d: sample JSONL diverged (%d vs %d bytes)", workers, len(got.jsonl), len(ref.jsonl))
	}
	if got.csv != ref.csv {
		t.Errorf("workers=%d: sample CSV diverged", workers)
	}
	if got.counters != ref.counters {
		t.Errorf("workers=%d: counters JSON diverged", workers)
	}
	if got.prom != ref.prom {
		t.Errorf("workers=%d: Prometheus rendering diverged", workers)
	}
}

func TestTelemetryDeterminism(t *testing.T) {
	threads := xmtgo.ConfigFPGA64().Clusters * xmtgo.ConfigFPGA64().TCUsPerCluster
	src := workloads.TableI(workloads.ParallelMemory, threads, 8)
	prog, _, err := xmtgo.Build("telemetry.c", src, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("clean", func(t *testing.T) {
		cfg := xmtgo.ConfigFPGA64()
		cfg.HostWorkers = 1
		ref := telemetryRun(t, prog, cfg, 300)
		if ref.samples < 2 {
			t.Fatalf("want a multi-window time series, got %d samples", ref.samples)
		}
		for _, w := range []int{2, 4} {
			cfg.HostWorkers = w
			compareTelemetry(t, w, telemetryRun(t, prog, cfg, 300), ref)
		}
	})

	// A faulty run: TCU failures decommission units mid-run, so samples carry
	// fault counters and a shrinking alive_tcus — still bit-identical.
	t.Run("faulty", func(t *testing.T) {
		cfg := xmtgo.ConfigFPGA64()
		cfg.FaultPlan = "tcufail:4@50-400;memflip:2@50-400"
		cfg.FaultSeed = 7
		cfg.HostWorkers = 1
		ref := telemetryRun(t, prog, cfg, 300)
		if !strings.Contains(ref.jsonl, `"decommissioned_tcus":4`) {
			t.Fatalf("faulty run telemetry shows no decommissioned TCUs:\n%s", ref.jsonl)
		}
		for _, w := range []int{2, 4} {
			cfg.HostWorkers = w
			compareTelemetry(t, w, telemetryRun(t, prog, cfg, 300), ref)
		}
	})
}

// TestTelemetryCheckpointResume chops a run at a periodic checkpoint and
// resumes it in a fresh system with its own sampler: the resumed segment's
// samples must continue the absolute cycle axis, and the stitched stream
// must be deterministic across host worker counts.
func TestTelemetryCheckpointResume(t *testing.T) {
	red, _, _ := workloads.Reduction(512)
	prog, _, err := xmtgo.Build("reduction.c", red, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (string, int64) {
		cfg := xmtgo.ConfigFPGA64()
		cfg.HostWorkers = workers

		// Uninterrupted reference to size the checkpoint interval.
		refSys, err := xmtgo.NewSimulator(prog, cfg, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := refSys.Run(2_000_000)
		if err != nil || !refRes.Halted {
			t.Fatalf("reference run: err=%v", err)
		}

		var stream bytes.Buffer
		var st *xmtgo.Checkpoint
		var resumeCycle int64
		for seg := 0; ; seg++ {
			sys, err := xmtgo.NewSimulator(prog, cfg, &bytes.Buffer{})
			if err != nil {
				t.Fatal(err)
			}
			if st != nil {
				if err := sys.RestoreState(st); err != nil {
					t.Fatal(err)
				}
				resumeCycle = sys.StartCycle()
			}
			sys.CheckpointEvery(refRes.Cycles / 3)
			smp := metrics.Attach(sys, 200)
			res, err := sys.Run(2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
			for _, s := range smp.Samples() {
				if s.Cycle <= resumeCycle && st != nil {
					t.Fatalf("segment %d: sample cycle %d not past resume offset %d", seg, s.Cycle, resumeCycle)
				}
			}
			if err := metrics.WriteJSONL(&stream, smp.Header(), smp.Samples()); err != nil {
				t.Fatal(err)
			}
			if res.Checkpoint {
				var buf bytes.Buffer
				if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
					t.Fatal(err)
				}
				if st, err = xmtgo.LoadCheckpoint(&buf); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if !res.Halted {
				t.Fatalf("segment %d: did not halt", seg)
			}
			return stream.String(), resumeCycle
		}
	}

	ref, resumeCycle := run(1)
	if resumeCycle == 0 {
		t.Fatal("run never resumed from a checkpoint")
	}
	for _, w := range []int{2, 4} {
		got, _ := run(w)
		if got != ref {
			t.Errorf("workers=%d: stitched sample stream diverged (%d vs %d bytes)", w, len(got), len(ref))
		}
	}
}
