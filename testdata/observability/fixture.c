// Fixture for the observability golden tests (observability_golden_test.go).
// Small and fully deterministic: every store lands at a thread-indexed
// position and the ps reduction is commutative, so the final state, the
// Chrome trace and the counter report are stable across host worker counts.
int A[16];
int B[16];
int done = 0;

int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 16; i++) A[i] = i + 1;

    spawn(0, 15) {
        int inc = 1;
        B[$] = A[$] * 2;
        ps(inc, done);       // exercises the prefix-sum unit and its latency histogram
    }
    for (i = 0; i < 16; i++) sum = sum + B[i];

    print_string("sum=");
    print_int(sum);
    print_string(" done=");
    print_int(done);
    print_char('\n');
    return 0;
}
