// xmtsan golden fixture (race_report.golden): the first spawn epoch is the
// paper's Fig. 6 pattern — an unsynchronized cross-thread write/read pair
// on "shared" — and must be reported; the second epoch repeats the pattern
// with prefix-sum synchronization over "flag" (Fig. 7) and must stay
// clean. The report is byte-identical at any host worker count.
int shared = 0;
int flag = 0;
int obs = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            shared = 42;
        } else {
            obs = shared;
        }
    }
    spawn(0, 1) {
        if ($ == 0) {
            int one = 1;
            shared = 7;
            psm(one, flag);
        } else {
            int t = 0;
            psm(t, flag);
            obs = shared;
        }
    }
    print_int(obs);
    return 0;
}
