// Watchdog × checkpoint interaction (docs/ROBUSTNESS.md): a run that the
// no-retire watchdog kills mid-flight must be resumable from its last
// periodic checkpoint under a roomier watchdog window, and the resumed run
// must end in exactly the architectural state of an uninterrupted run. This
// is the recovery loop xmtbatch and xmtd rely on: watchdog converts a wedge
// into a diagnostic, the checkpoint converts the diagnostic into a retry
// that loses no work.
package xmtgo_test

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo"
)

// watchdogResumeAsm retires steadily through a long register loop (quiet
// watchdog, regular quiescent checkpoint boundaries), then issues a single
// DRAM load. With dram_latency raised above the watchdog window, that load
// is a no-retire stall the watchdog must kill; with a large window it simply
// completes and the program prints its result and halts.
const watchdogResumeAsm = `
        .data
A:      .word 7
B:      .space 64
        .text
        .global main
main:
        li    $t0, 20000
        li    $t2, 0
Lreg:   addiu $t2, $t2, 1
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lreg
        la    $t1, A
        lw    $t3, 0($t1)
        addu  $t2, $t2, $t3
        la    $t4, B
        sw    $t2, 0($t4)
        lw    $v0, 0($t4)
        sys   1
        sys   0
`

func TestWatchdogTripResumeFromCheckpoint(t *testing.T) {
	prog, err := xmtgo.Assemble("watchdog_resume.s", watchdogResumeAsm)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := func() xmtgo.Config {
		cfg := xmtgo.ConfigFPGA64()
		cfg.DRAMLatency = 8000 // every DRAM access out-stalls the tight window
		return cfg
	}

	// Reference: uninterrupted run under a watchdog window wide enough to
	// ride out the slow load.
	refCfg := baseCfg()
	refCfg.WatchdogCycles = 1_000_000
	var refOut bytes.Buffer
	ref, err := xmtgo.NewSimulator(prog, refCfg, &refOut)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(10_000_000)
	if err != nil || !refRes.Halted {
		t.Fatalf("reference run: halted=%v err=%v", refRes != nil && refRes.Halted, err)
	}

	// Wedged run: tight watchdog window, periodic checkpoints. The register
	// loop checkpoints normally; the DRAM load then stalls past the window
	// and the watchdog must convert the wedge into a diagnostic error.
	tightCfg := baseCfg()
	tightCfg.WatchdogCycles = 2000
	var st *xmtgo.Checkpoint
	checkpoints := 0
	var tripErr error
	for tripErr == nil {
		var out bytes.Buffer
		sys, err := xmtgo.NewSimulator(prog, tightCfg, &out)
		if err != nil {
			t.Fatal(err)
		}
		if st != nil {
			if err := sys.RestoreState(st); err != nil {
				t.Fatalf("restore before segment %d: %v", checkpoints, err)
			}
		}
		sys.CheckpointEvery(10_000)
		res, err := sys.Run(10_000_000)
		if err != nil {
			tripErr = err
			break
		}
		if res.Halted {
			t.Fatalf("run halted under the tight watchdog; the stall never materialized (%+v)", res)
		}
		if !res.Checkpoint {
			t.Fatalf("segment %d stopped without a checkpoint or an error: %+v", checkpoints, res)
		}
		checkpoints++
		// Round-trip the state through the serialized format, as a real
		// retry loop (xmtbatch, xmtd) would.
		var buf bytes.Buffer
		if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
			t.Fatal(err)
		}
		if st, err = xmtgo.LoadCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(tripErr.Error(), "watchdog") {
		t.Fatalf("run failed with %q, want a watchdog diagnostic", tripErr)
	}
	if checkpoints == 0 {
		t.Fatal("watchdog tripped before any checkpoint was captured; recovery contract untested")
	}
	if st == nil {
		t.Fatal("no checkpoint state to resume from")
	}

	// Recovery: resume the last checkpoint under the wide window. The load
	// completes and the final architectural state must be byte-identical to
	// the uninterrupted run. (Cycle counts legitimately drift: a checkpoint
	// holds only architectural state, so the resumed segment replays with
	// cold caches — see TestCycleCheckpointResume.)
	var out bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, refCfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RestoreState(st); err != nil {
		t.Fatalf("restore for recovery: %v", err)
	}
	res, err := sys.Run(10_000_000)
	if err != nil || !res.Halted {
		t.Fatalf("recovery run: halted=%v err=%v", res != nil && res.Halted, err)
	}
	if out.String() != refOut.String() {
		t.Errorf("output %q, reference %q", out.String(), refOut.String())
	}
	if sys.Machine.G != ref.Machine.G {
		t.Error("global registers diverged from the uninterrupted run")
	}
	if *sys.MasterContext() != *ref.MasterContext() {
		t.Error("master context diverged from the uninterrupted run")
	}
	if !bytes.Equal(sys.Machine.Mem, ref.Machine.Mem) {
		t.Error("memory diverged from the uninterrupted run")
	}
}
