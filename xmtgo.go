// Package xmtgo is a Go reproduction of the XMT toolchain described in
// "Toolchain for Programming, Simulating and Studying the XMT Many-Core
// Architecture" (Keceli, Tzannes, Caragea, Barua, Vishkin — IPDPS Workshops
// 2011): the XMTC optimizing compiler (pre-pass outlining, optimizing core
// pass, assembly post-pass) and XMTSim, a highly configurable cycle-accurate
// discrete-event simulator of the XMT many-core architecture, plus the fast
// functional simulation mode, statistics/plug-in machinery, power and
// thermal modeling, execution tracing, checkpoints and floorplan
// visualization.
//
// This package is the public facade. A typical workflow — the programmer's
// workflow from PRAM algorithm to simulated execution the paper describes —
// is:
//
//	prog, _, err := xmtgo.Build("compact.c", src, xmtgo.DefaultCompileOptions())
//	if err != nil { ... }
//	sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), os.Stdout)
//	if err != nil { ... }
//	res, err := sys.Run(0)
//	fmt.Println(res.Cycles)
package xmtgo

import (
	"io"

	"xmtgo/internal/asm"
	"xmtgo/internal/asm/postpass"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/funcvm"
	"xmtgo/internal/sim/power"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/thermal"
	"xmtgo/internal/sim/trace"
)

// Compiler types.
type (
	// CompileOptions configure the XMTC compiler pipeline.
	CompileOptions = codegen.Options
	// CompileResult is a successful compilation (assembly unit + stats).
	CompileResult = codegen.Result
	// Program is a linked XMT executable.
	Program = asm.Program
	// Unit is a parsed/emitted assembly unit (pre-link).
	Unit = asm.Unit
)

// Simulator types.
type (
	// Config describes a simulated XMT machine.
	Config = config.Config
	// Simulator is the cycle-accurate system (XMTSim's cycle mode).
	Simulator = cycle.System
	// SimResult summarizes a cycle-accurate run.
	SimResult = cycle.Result
	// Machine is the functional model (XMTSim's fast functional mode).
	Machine = funcmodel.Machine
	// FuncVM is the direct-threaded bytecode backend for functional mode
	// (docs/SIMULATOR.md §Functional backends).
	FuncVM = funcvm.VM
	// Stats is the instruction/activity counter collector.
	Stats = stats.Collector
	// Filter is the end-of-run statistics filter plug-in interface.
	Filter = stats.Filter
	// ActivityPlugin samples activity counters at runtime and may drive
	// DVFS through the Control API.
	ActivityPlugin = cycle.ActivityPlugin
	// Tracer renders execution traces.
	Tracer = trace.Tracer
	// Checkpoint is a serializable simulation state.
	Checkpoint = checkpoint.State
	// PowerModel converts activity counters to watts.
	PowerModel = power.Model
	// ThermalGrid is the lumped RC die model.
	ThermalGrid = thermal.Grid
	// ThermalManager is the bundled power/thermal DVFS activity plug-in.
	ThermalManager = power.ThermalManager
)

// Engine window strategies for Config.EngineMode (docs/PERF.md): the
// conservative bounded-lookahead default and the optimistic rollback mode.
// Results are bit-identical under either.
const (
	EngineWindowed   = config.EngineWindowed
	EngineOptimistic = config.EngineOptimistic
)

// Functional-mode backends for Config.FuncBackend (docs/SIMULATOR.md
// §Functional backends). Architectural results are bit-identical under
// either; the VM is the fast path.
const (
	FuncBackendInterp = config.FuncBackendInterp
	FuncBackendVM     = config.FuncBackendVM
)

// DefaultCompileOptions returns the standard -O1 pipeline configuration.
func DefaultCompileOptions() CompileOptions { return codegen.DefaultOptions() }

// Compile runs the three-pass XMTC compiler and returns the assembly unit.
func Compile(file, src string, opts CompileOptions) (*CompileResult, error) {
	return codegen.Compile(file, src, opts)
}

// Build compiles XMTC source and links it (applying optional memory-map
// inputs, the paper's mechanism for feeding data to OS-less XMTC programs).
func Build(file, src string, opts CompileOptions, memMaps ...string) (*Program, *CompileResult, error) {
	res, err := codegen.Compile(file, src, opts)
	if err != nil {
		return nil, nil, err
	}
	prog, err := asm.Assemble(res.Unit)
	if err != nil {
		return nil, res, err
	}
	for _, mm := range memMaps {
		if err := asm.ApplyMemMap(prog, "memmap", mm); err != nil {
			return nil, res, err
		}
	}
	return prog, res, nil
}

// Assemble parses, verifies (post-pass) and links handwritten assembly.
func Assemble(file, src string, memMaps ...string) (*Program, error) {
	u, err := asm.Parse(file, src)
	if err != nil {
		return nil, err
	}
	if _, err := postpass.Run(u); err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(u)
	if err != nil {
		return nil, err
	}
	for _, mm := range memMaps {
		if err := asm.ApplyMemMap(prog, "memmap", mm); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// PrintUnit renders an assembly unit as text (round-trips through Parse).
func PrintUnit(u *Unit) string { return asm.Print(u) }

// ConfigFPGA64 returns the 64-TCU Paraleap FPGA prototype configuration.
func ConfigFPGA64() Config { return config.FPGA64() }

// ConfigChip1024 returns the envisioned 1024-TCU XMT chip configuration.
func ConfigChip1024() Config { return config.Chip1024() }

// PresetConfig returns a named built-in configuration.
func PresetConfig(name string) (Config, error) { return config.Preset(name) }

// NewSimulator builds a cycle-accurate simulator for prog; out receives the
// program's printf output.
func NewSimulator(prog *Program, cfg Config, out io.Writer) (*Simulator, error) {
	return cycle.New(prog, cfg, out)
}

// NewMachine builds the fast functional-mode machine for prog (orders of
// magnitude faster than cycle-accurate mode; serializes spawn sections).
func NewMachine(prog *Program, cfg Config, out io.Writer) (*Machine, error) {
	return funcmodel.New(prog, cfg.MemBytes, out)
}

// NewFuncVM attaches the direct-threaded bytecode backend to a functional
// machine, lowering the program on first use (the lowered form is cached
// on the Program and shared by subsequent VMs).
func NewFuncVM(m *Machine) (*FuncVM, error) { return funcvm.Attach(m) }

// RunFunctional executes prog to completion in functional mode — under the
// backend selected by cfg.FuncBackend — and returns the number of executed
// instructions.
func RunFunctional(prog *Program, cfg Config, out io.Writer) (uint64, error) {
	m, err := funcmodel.New(prog, cfg.MemBytes, out)
	if err != nil {
		return 0, err
	}
	if cfg.FuncBackend == config.FuncBackendVM {
		vm, err := funcvm.Attach(m)
		if err != nil {
			m.ReleaseMemory()
			return 0, err
		}
		err = vm.Run(0)
		n := m.InstrCount
		m.ReleaseMemory()
		return n, err
	}
	err = m.Run(0)
	n := m.InstrCount
	m.ReleaseMemory()
	return n, err
}

// NewHotLocationsFilter returns the paper's example filter plug-in: a list
// of the most frequently accessed shared-memory locations.
func NewHotLocationsFilter(granularity uint32, topN int) *stats.HotLocations {
	return stats.NewHotLocations(granularity, topN)
}

// NewThermalManager returns the bundled power→temperature→DVFS activity
// plug-in (paper §III-F).
func NewThermalManager(cfg *Config, intervalCycles int64, thresholdC float64) (*ThermalManager, error) {
	return power.NewThermalManager(cfg, intervalCycles, thresholdC)
}

// SaveCheckpoint / LoadCheckpoint persist simulation state.
func SaveCheckpoint(w io.Writer, st *Checkpoint) error { return checkpoint.Save(w, st) }

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Load(r) }
