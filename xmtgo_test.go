package xmtgo_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xmtgo"
	"xmtgo/internal/prng"
	"xmtgo/internal/workloads"
)

// TestFacadeWorkflow drives the documented programmer's workflow through
// the public API: compile, link with a memory map, run functionally, then
// cycle-accurately, and read statistics.
func TestFacadeWorkflow(t *testing.T) {
	src := `
int n = 0;
int A[64];
int total = 0;
int main() {
    spawn(0, n - 1) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total);
    return 0;
}`
	mm := "n = 8\nA = 1 2 3 4 5 6 7 8\n"
	prog, cres, err := xmtgo.Build("t.c", src, xmtgo.DefaultCompileOptions(), mm)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Stats.OutlinedSpawns != 1 {
		t.Fatal("outlining missing")
	}
	var fOut bytes.Buffer
	if _, err := xmtgo.RunFunctional(prog, xmtgo.ConfigFPGA64(), &fOut); err != nil {
		t.Fatal(err)
	}
	if fOut.String() != "36" {
		t.Fatalf("functional: %q", fOut.String())
	}

	var cOut bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), &cOut)
	if err != nil {
		t.Fatal(err)
	}
	hot := xmtgo.NewHotLocationsFilter(32, 5)
	sys.Stats.AddFilter(hot)
	res, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if cOut.String() != "36" || !res.Halted {
		t.Fatalf("cycle: %q, %+v", cOut.String(), res)
	}
	if sys.Stats.TotalInstrs() == 0 || sys.Stats.SpawnCount != 1 {
		t.Fatal("stats empty")
	}
	var rep bytes.Buffer
	sys.Stats.Report(&rep)
	if !strings.Contains(rep.String(), "hot-locations") {
		t.Fatal("filter missing from report")
	}
}

func TestFacadeAssemble(t *testing.T) {
	prog, err := xmtgo.Assemble("t.s", `
        .data
v:      .word 0
        .text
main:   lw   $v0, v
        sys  1
        sys  0
`, "v = 9")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := xmtgo.RunFunctional(prog, xmtgo.ConfigFPGA64(), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "9" {
		t.Fatalf("got %q", out.String())
	}
}

func TestFacadeCheckpointRoundTrip(t *testing.T) {
	src := `
int v = 1;
int main() {
    v = v + 41;
    checkpoint();
    print_int(v);
    return 0;
}`
	prog, _, err := xmtgo.Build("c.c", src, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checkpoint {
		t.Fatalf("no checkpoint stop: %+v", res)
	}
	var buf bytes.Buffer
	if err := xmtgo.SaveCheckpoint(&buf, sys.Capture()); err != nil {
		t.Fatal(err)
	}
	st, err := xmtgo.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sys2, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(0); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42" {
		t.Fatalf("resumed output %q", out.String())
	}
}

// TestCompactionProperty: the Fig. 2a program compacts random arrays
// correctly for arbitrary densities and sizes (functional-mode property
// test with a host oracle).
func TestCompactionProperty(t *testing.T) {
	rng := prng.New(99)
	f := func(seedLow uint16, sizeSel, densSel uint8) bool {
		n := 8 + int(sizeSel%120)
		density := float64(densSel%10) / 10.0
		src, nz := workloads.Compaction(n, density, uint64(seedLow)+1)
		prog, _, err := xmtgo.Build("c.c", src, xmtgo.DefaultCompileOptions())
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		var out bytes.Buffer
		if _, err := xmtgo.RunFunctional(prog, xmtgo.ConfigFPGA64(), &out); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return out.String() == fmt.Sprint(nz)
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(pcgSource{rng})}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPsAtomicityProperty: concurrent ps over one base hands out exactly
// the range [0, k) — no duplicates, no gaps — under cycle-accurate timing.
func TestPsAtomicityProperty(t *testing.T) {
	for _, k := range []int{1, 7, 64, 200} {
		src := fmt.Sprintf(`
int got[%d];
int base = 0;
int ok = 1;
int main() {
    int i;
    spawn(0, %d) {
        int inc = 1;
        ps(inc, base);
        got[inc] = got[inc] + 1;
    }
    if (base != %d) ok = 0;
    for (i = 0; i < %d; i++) {
        if (got[i] != 1) ok = 0;
    }
    print_int(ok);
    return 0;
}`, k, k-1, k, k)
		prog, _, err := xmtgo.Build("ps.c", src, xmtgo.DefaultCompileOptions())
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), &out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			t.Fatal(err)
		}
		if out.String() != "1" {
			t.Fatalf("k=%d: ps handed out a non-permutation", k)
		}
	}
}

// pcgSource adapts the deterministic PCG to math/rand for testing/quick.
type pcgSource struct{ r *prng.PCG }

func (s pcgSource) Int63() int64 { return int64(s.r.Uint64() >> 1) }
func (s pcgSource) Seed(int64)   {}
